//! Type checking lints: operand/result types against dialect
//! expectations, and memory-space consistency at kernel boundaries.

use everest_ir::ids::OpId;
use everest_ir::module::{Module, Operation};
use everest_ir::registry::{Context, OpTrait};
use everest_ir::types::{MemorySpace, Type};

use crate::diagnostics::Severity;
use crate::lint::{Collector, Lint, LintInfo};

const FLOAT_OPS: &[&str] = &[
    "arith.addf",
    "arith.subf",
    "arith.mulf",
    "arith.divf",
    "arith.maxf",
    "arith.minf",
    "arith.negf",
    "arith.absf",
    "arith.sqrt",
    "arith.exp",
    "arith.log",
];

const INT_OPS: &[&str] = &[
    "arith.addi",
    "arith.subi",
    "arith.muli",
    "arith.divsi",
    "arith.remsi",
    "arith.andi",
    "arith.ori",
    "arith.xori",
];

/// Validates operand/result types against what each dialect op expects.
///
/// This is the collecting counterpart of the per-op verifiers: it runs
/// the same kind of checks but records *every* mismatch in the module
/// instead of failing at the first one, and adds checks the verifiers
/// do not express (float ops on non-float types, index-typed loop
/// bounds, return types against the function signature).
#[derive(Debug, Clone, Copy, Default)]
pub struct TypeCheck;

const TYPECHECK_LINTS: &[LintInfo] = &[LintInfo {
    id: "type-mismatch",
    description: "operand or result type violates the op's dialect contract",
    default_severity: Severity::Deny,
}];

const ID: &str = "type-mismatch";

impl Lint for TypeCheck {
    fn name(&self) -> &'static str {
        "type-check"
    }

    fn lints(&self) -> &'static [LintInfo] {
        TYPECHECK_LINTS
    }

    fn run(&self, ctx: &Context, module: &Module, out: &mut Collector<'_>) {
        for op in module.walk_ops() {
            let Some(operation) = module.op(op) else {
                continue;
            };
            check_same_operand_result_types(ctx, module, op, operation, out);
            check_arith(module, op, operation, out);
            check_memref_access(module, op, operation, out);
            check_loop_bounds(module, op, operation, out);
            check_return_types(module, op, operation, out);
        }
    }
}

fn check_same_operand_result_types(
    ctx: &Context,
    module: &Module,
    op: OpId,
    operation: &Operation,
    out: &mut Collector<'_>,
) {
    if !ctx.op_has_trait(&operation.name, OpTrait::SameOperandResultTypes) {
        return;
    }
    let mut types = operation
        .operands
        .iter()
        .chain(&operation.results)
        .map(|&v| module.value_type(v));
    let Some(first) = types.next() else {
        return;
    };
    for t in types {
        if t != first {
            out.emit(
                ID,
                op,
                format!("operand/result types differ: {first} vs {t}"),
            );
            return;
        }
    }
}

fn check_arith(module: &Module, op: OpId, operation: &Operation, out: &mut Collector<'_>) {
    if FLOAT_OPS.contains(&operation.name.as_str()) {
        for &v in &operation.operands {
            let ty = module.value_type(v);
            if !ty.is_float_like() {
                out.emit(ID, op, format!("float arithmetic on non-float type {ty}"));
                return;
            }
        }
    }
    if INT_OPS.contains(&operation.name.as_str()) {
        for &v in &operation.operands {
            let ty = module.value_type(v);
            if !matches!(ty, Type::Int(_) | Type::Index) {
                out.emit(
                    ID,
                    op,
                    format!("integer arithmetic on non-integer type {ty}"),
                );
                return;
            }
        }
    }
    if matches!(operation.name.as_str(), "arith.cmpf" | "arith.cmpi") {
        if let Some(&r) = operation.results.first() {
            let ty = module.value_type(r);
            if *ty != Type::Int(1) {
                out.emit(ID, op, format!("comparison must produce i1, got {ty}"));
            }
        }
    }
    if operation.name == "arith.select" && operation.operands.len() == 3 {
        let cond = module.value_type(operation.operands[0]);
        if *cond != Type::Int(1) {
            out.emit(ID, op, format!("select condition must be i1, got {cond}"));
        }
        let a = module.value_type(operation.operands[1]);
        let b = module.value_type(operation.operands[2]);
        if a != b {
            out.emit(
                ID,
                op,
                format!("select arms have different types: {a} vs {b}"),
            );
        }
    }
}

fn check_memref_access(module: &Module, op: OpId, operation: &Operation, out: &mut Collector<'_>) {
    let (base_index, index_start) = match operation.name.as_str() {
        "memref.load" => (0, 1),
        "memref.store" => (1, 2),
        _ => return,
    };
    if operation.operands.len() <= base_index {
        return;
    }
    let base = module.value_type(operation.operands[base_index]);
    let Type::MemRef { elem, .. } = base else {
        out.emit(ID, op, format!("expected a memref operand, got {base}"));
        return;
    };
    for &idx in &operation.operands[index_start..] {
        let ty = module.value_type(idx);
        if *ty != Type::Index {
            out.emit(
                ID,
                op,
                format!("memref index must be index-typed, got {ty}"),
            );
        }
    }
    match operation.name.as_str() {
        "memref.load" => {
            if let Some(&r) = operation.results.first() {
                let rty = module.value_type(r);
                if rty != elem.as_ref() {
                    out.emit(
                        ID,
                        op,
                        format!("load result {rty} does not match element type {elem}"),
                    );
                }
            }
        }
        "memref.store" => {
            let sty = module.value_type(operation.operands[0]);
            if sty != elem.as_ref() {
                out.emit(
                    ID,
                    op,
                    format!("stored value {sty} does not match element type {elem}"),
                );
            }
        }
        _ => {}
    }
}

fn check_loop_bounds(module: &Module, op: OpId, operation: &Operation, out: &mut Collector<'_>) {
    if operation.name != "scf.for" || operation.operands.len() < 3 {
        return;
    }
    for (&v, role) in operation.operands[..3].iter().zip(["lb", "ub", "step"]) {
        let ty = module.value_type(v);
        if *ty != Type::Index {
            out.emit(
                ID,
                op,
                format!("scf.for {role} must be index-typed, got {ty}"),
            );
        }
    }
}

fn check_return_types(module: &Module, op: OpId, operation: &Operation, out: &mut Collector<'_>) {
    if operation.name != "func.func" {
        return;
    }
    let Some(Type::Function { outputs, .. }) =
        operation.attr("function_type").and_then(|a| a.as_type())
    else {
        return;
    };
    let Some(&region) = operation.regions.first() else {
        return;
    };
    for &block in &module.region(region).blocks {
        let Some(&last) = module.block(block).ops.last() else {
            continue;
        };
        let Some(ret) = module.op(last) else {
            continue;
        };
        if ret.name != "func.return" {
            continue;
        }
        let got: Vec<&Type> = ret.operands.iter().map(|&v| module.value_type(v)).collect();
        if got.len() != outputs.len() || got.iter().zip(outputs).any(|(g, w)| **g != *w) {
            out.emit(
                ID,
                op,
                format!(
                    "return types {:?} do not match signature outputs {:?}",
                    got.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
                    outputs.iter().map(|t| t.to_string()).collect::<Vec<_>>()
                ),
            );
        }
    }
}

/// Memory-space consistency at kernel boundaries (paper §V-C: Olympus
/// distinguishes host, device and PLM memories when generating the
/// data-movement architecture).
///
/// Flags host-space buffers handed directly to FPGA kernels, DMA ops
/// whose declared direction contradicts their operand spaces, and
/// cross-space `memref.copy` that should be an `olympus.dma`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemorySpaceCheck;

const MEMSPACE_LINTS: &[LintInfo] = &[LintInfo {
    id: "memory-space",
    description: "memory-space mismatch at a kernel or DMA boundary",
    default_severity: Severity::Warn,
}];

const MS: &str = "memory-space";

fn space_of(module: &Module, v: everest_ir::ids::ValueId) -> Option<MemorySpace> {
    match module.value_type(v) {
        Type::MemRef { space, .. } => Some(*space),
        _ => None,
    }
}

impl Lint for MemorySpaceCheck {
    fn name(&self) -> &'static str {
        "memory-space-check"
    }

    fn lints(&self) -> &'static [LintInfo] {
        MEMSPACE_LINTS
    }

    fn run(&self, _ctx: &Context, module: &Module, out: &mut Collector<'_>) {
        for op in module.walk_ops() {
            let Some(operation) = module.op(op) else {
                continue;
            };
            match operation.name.as_str() {
                "olympus.kernel" => {
                    for &v in &operation.operands {
                        if space_of(module, v) == Some(MemorySpace::Host) {
                            out.emit(
                                MS,
                                op,
                                "kernel consumes a host-space buffer directly; \
                                 stage it through device memory or PLM via DMA",
                            );
                        }
                    }
                }
                "olympus.dma" => {
                    let Some(dir) = operation.str_attr("direction") else {
                        continue;
                    };
                    if operation.operands.len() != 2 {
                        continue;
                    }
                    let src = space_of(module, operation.operands[0]);
                    let dst = space_of(module, operation.operands[1]);
                    let (Some(src), Some(dst)) = (src, dst) else {
                        continue;
                    };
                    let ok = match dir {
                        "h2d" => src == MemorySpace::Host && dst != MemorySpace::Host,
                        "d2h" => src != MemorySpace::Host && dst == MemorySpace::Host,
                        "d2d" => src != MemorySpace::Host && dst != MemorySpace::Host,
                        _ => true,
                    };
                    if !ok {
                        out.emit(
                            MS,
                            op,
                            format!(
                                "dma direction '{dir}' contradicts operand spaces {src} -> {dst}"
                            ),
                        );
                    }
                }
                "memref.copy" => {
                    if operation.operands.len() != 2 {
                        continue;
                    }
                    let src = space_of(module, operation.operands[0]);
                    let dst = space_of(module, operation.operands[1]);
                    if let (Some(src), Some(dst)) = (src, dst) {
                        if src != dst {
                            out.emit(
                                MS,
                                op,
                                format!(
                                    "copy crosses memory spaces ({src} -> {dst}); \
                                     use olympus.dma so the transfer is scheduled"
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::attr::Attribute;
    use everest_ir::dialects::core;

    use crate::lint::Analyzer;

    fn ctx() -> Context {
        Context::with_all_dialects()
    }

    fn typecheck(m: &Module) -> crate::report::AnalysisReport {
        Analyzer::new()
            .with_lint(Box::new(TypeCheck))
            .run(&ctx(), m)
    }

    fn memspace(m: &Module) -> crate::report::AnalysisReport {
        Analyzer::new()
            .with_lint(Box::new(MemorySpaceCheck))
            .run(&ctx(), m)
    }

    #[test]
    fn clean_arithmetic_module_has_no_findings() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let b = core::const_f64(&mut m, top, 2.0);
        core::binary(&mut m, top, "arith.addf", a, b);
        assert!(typecheck(&m).is_clean());
    }

    #[test]
    fn float_op_on_index_operands_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let i = core::const_index(&mut m, top, 1);
        let j = core::const_index(&mut m, top, 2);
        // Same operand/result types (all index), so only the float check
        // can catch this.
        m.build_op("arith.addf", [i, j], [Type::Index])
            .append_to(top);
        let report = typecheck(&m);
        assert_eq!(report.by_lint("type-mismatch").len(), 1);
        assert!(report.diagnostics[0].message.contains("non-float"));
        assert!(report.has_denials(), "type-mismatch defaults to deny");
    }

    #[test]
    fn all_mismatches_are_collected_not_just_the_first() {
        let mut m = Module::new();
        let top = m.top_block();
        let i = core::const_index(&mut m, top, 1);
        let f = core::const_f64(&mut m, top, 1.0);
        m.build_op("arith.addf", [i, i], [Type::Index])
            .append_to(top);
        m.build_op("arith.addi", [f, f], [Type::F64]).append_to(top);
        let report = typecheck(&m);
        assert_eq!(report.diagnostics.len(), 2, "{}", report.to_text());
    }

    #[test]
    fn mismatched_same_type_trait_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let b = core::const_f64(&mut m, top, 2.0);
        m.build_op("arith.addf", [a, b], [Type::F32]).append_to(top);
        let report = typecheck(&m);
        assert!(!report.is_clean());
        assert!(report.diagnostics[0].message.contains("differ"));
    }

    #[test]
    fn return_type_mismatch_is_flagged_with_path() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = core::build_func(&mut m, top, "f", &[], &[Type::F64]);
        let i = core::const_index(&mut m, entry, 3);
        m.build_op("func.return", [i], []).append_to(entry);
        let report = typecheck(&m);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.diagnostics[0].message.contains("signature"));
        assert!(report.diagnostics[0].path.is_some());
    }

    #[test]
    fn loop_bounds_must_be_index_typed() {
        let mut m = Module::new();
        let top = m.top_block();
        let lb = core::const_index(&mut m, top, 0);
        let ub = core::const_f64(&mut m, top, 4.0);
        let step = core::const_index(&mut m, top, 1);
        let for_op = m
            .build_op("scf.for", [lb, ub, step], [])
            .regions(1)
            .append_to(top);
        let region = m.op(for_op).unwrap().regions[0];
        let body = m.add_block(region, &[Type::Index]);
        m.build_op("scf.yield", [], []).append_to(body);
        let report = typecheck(&m);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.diagnostics[0].message.contains("ub"));
    }

    #[test]
    fn host_buffer_into_kernel_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let host = core::alloc(
            &mut m,
            top,
            Type::memref(&[8], Type::F64, MemorySpace::Host),
        );
        m.build_op("olympus.kernel", [host], [])
            .attr("callee", Attribute::SymbolRef("k".into()))
            .append_to(top);
        let report = memspace(&m);
        assert_eq!(report.by_lint("memory-space").len(), 1);
        assert!(report.diagnostics[0].message.contains("host-space"));
    }

    #[test]
    fn staged_kernel_io_is_clean() {
        let mut m = Module::new();
        let top = m.top_block();
        let host = core::alloc(
            &mut m,
            top,
            Type::memref(&[8], Type::F64, MemorySpace::Host),
        );
        let dev = core::alloc(
            &mut m,
            top,
            Type::memref(&[8], Type::F64, MemorySpace::Device),
        );
        m.build_op("olympus.dma", [host, dev], [])
            .attr("direction", "h2d")
            .append_to(top);
        m.build_op("olympus.kernel", [dev], [])
            .attr("callee", Attribute::SymbolRef("k".into()))
            .append_to(top);
        assert!(memspace(&m).is_clean());
    }

    #[test]
    fn dma_direction_contradicting_spaces_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let host = core::alloc(
            &mut m,
            top,
            Type::memref(&[8], Type::F64, MemorySpace::Host),
        );
        let dev = core::alloc(
            &mut m,
            top,
            Type::memref(&[8], Type::F64, MemorySpace::Device),
        );
        m.build_op("olympus.dma", [dev, host], [])
            .attr("direction", "h2d")
            .append_to(top);
        let report = memspace(&m);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.diagnostics[0].message.contains("h2d"));
    }

    #[test]
    fn cross_space_copy_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let dev = core::alloc(
            &mut m,
            top,
            Type::memref(&[4], Type::F64, MemorySpace::Device),
        );
        let plm = core::alloc(&mut m, top, Type::memref(&[4], Type::F64, MemorySpace::Plm));
        m.build_op("memref.copy", [dev, plm], []).append_to(top);
        let report = memspace(&m);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.diagnostics[0].message.contains("olympus.dma"));
    }
}
