//! Static worst-case latency analysis: per-op HLS cycle estimates
//! propagated through loops, calls, and the dataflow graph to a
//! provable per-kernel latency bound.
//!
//! The per-op figures come from [`everest_hls::CostLibrary`] — the same
//! table the HLS scheduler uses — so the bound is consistent with what
//! synthesis would report. Structured control flow multiplies by loop
//! trip counts proven by the interval fixpoint ([`crate::interval`]);
//! `func.call` recurses into callees (memoized, recursion ⇒ unbounded);
//! `dfg.graph` takes the longest path over actors via the
//! [`crate::fixpoint`] solver, with each `dfg.node`'s cost taken from
//! its callee's bound where the symbol resolves.
//!
//! A bound is *proven*: if any loop bound is not statically finite or a
//! dfg cycle makes path length diverge, the kernel is reported
//! unbounded rather than guessed at.
//!
//! Lints:
//!
//! * `latency-deadline` (deny) — an op carrying a `deadline_us`
//!   attribute whose proven worst-case latency exceeds it. Flow-built
//!   IR carries no such attribute, so this only fires where a deadline
//!   was explicitly claimed (e.g. by the serving tier's feasibility
//!   probe).
//! * `latency-unbounded` (warn) — an op claiming a `deadline_us` whose
//!   latency cannot be statically bounded at all.
//!
//! The serving tier consumes [`module_worst_case_us`] to reject
//! statically infeasible kernel classes at admission (see
//! `everest-serve`), closing the static-analysis → runtime loop.

use std::collections::BTreeMap;

use everest_hls::{CostLibrary, NumericFormat};
use everest_ir::ids::OpId;
use everest_ir::module::{Module, Operation};
use everest_ir::registry::Context;

use crate::diagnostics::Severity;
use crate::fixpoint::{solve, Direction, FlowGraph, Lattice, WorklistOrder};
use crate::interval::{self, Interval, IntervalFacts};
use crate::lint::{Collector, Lint, LintInfo};

/// Lints implemented by [`WorstCaseLatency`].
pub const LATENCY_LINTS: &[LintInfo] = &[
    LintInfo {
        id: "latency-deadline",
        description: "proven worst-case latency exceeds the declared deadline_us",
        default_severity: Severity::Deny,
    },
    LintInfo {
        id: "latency-unbounded",
        description: "a declared deadline_us cannot be statically proven (unbounded latency)",
        default_severity: Severity::Warn,
    },
];

const DEADLINE: &str = "latency-deadline";
const UNBOUNDED: &str = "latency-unbounded";

/// Default cost charged for a `dfg` actor whose callee does not resolve
/// to a bounded function in the module.
const DEFAULT_ACTOR_CYCLES: u64 = 64;

/// A proven worst-case latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBound {
    /// Worst-case cycles at the cost library's clock.
    pub cycles: u64,
    /// The same bound in microseconds.
    pub us: f64,
}

/// Longest-path lattice for the dfg fixpoint: max over paths, with an
/// explicit top for "a cycle keeps growing this".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathCycles {
    Bottom,
    Finite(u64),
    Unbounded,
}

impl Lattice for PathCycles {
    fn bottom() -> PathCycles {
        PathCycles::Bottom
    }

    fn join(&self, other: &PathCycles) -> PathCycles {
        match (*self, *other) {
            (PathCycles::Unbounded, _) | (_, PathCycles::Unbounded) => PathCycles::Unbounded,
            (PathCycles::Bottom, x) | (x, PathCycles::Bottom) => x,
            (PathCycles::Finite(a), PathCycles::Finite(b)) => PathCycles::Finite(a.max(b)),
        }
    }
}

/// The whole-module latency analysis, memoizing per-function bounds.
struct LatencyModel<'m> {
    module: &'m Module,
    costs: CostLibrary,
    facts: IntervalFacts,
    /// `None` in the map means "analysis in progress or unbounded".
    memo: BTreeMap<String, Option<u64>>,
    in_progress: Vec<String>,
}

impl<'m> LatencyModel<'m> {
    fn new(module: &'m Module) -> LatencyModel<'m> {
        LatencyModel {
            module,
            costs: CostLibrary::default(),
            facts: interval::compute(module),
            memo: BTreeMap::new(),
            in_progress: Vec::new(),
        }
    }

    fn us_of(&self, cycles: u64) -> f64 {
        cycles as f64 * self.costs.clock_ns / 1000.0
    }

    fn op_cycles(&self, operation: &Operation) -> u64 {
        let result_ty = operation
            .results
            .first()
            .map(|&v| self.module.value_type(v));
        self.costs
            .op_cost(&operation.name, result_ty, NumericFormat::F64)
            .latency as u64
    }

    /// Worst-case trip count of an `scf.for`, if provable.
    fn trip_count(&self, operation: &Operation) -> Option<u64> {
        let [lb, ub, step, ..] = operation.operands.as_slice() else {
            return None;
        };
        let (Interval::Range { lo: lb_lo, .. }, Interval::Range { hi: ub_hi, .. }) =
            (self.facts.of(*lb), self.facts.of(*ub))
        else {
            return None;
        };
        let step_lo = match self.facts.of(*step) {
            Interval::Range { lo, .. } if lo >= 1 => lo,
            _ => return None,
        };
        if lb_lo == i64::MIN || ub_hi == i64::MAX {
            return None;
        }
        let span = (ub_hi - lb_lo).max(0) as u64;
        Some(span.div_ceil(step_lo as u64))
    }

    /// Worst-case cycles of one op, including nested regions.
    fn cycles_of_op(&mut self, op_id: OpId) -> Option<u64> {
        let operation = self.module.op(op_id)?.clone();
        match operation.name.as_str() {
            "scf.for" => {
                let trips = self.trip_count(&operation)?;
                let mut body = 0u64;
                for &region in &operation.regions {
                    for &block in &self.module.region(region).blocks.clone() {
                        for &inner in &self.module.block(block).ops.clone() {
                            body = body.saturating_add(self.cycles_of_op(inner)?);
                        }
                    }
                }
                // One cycle of loop control per iteration.
                Some(trips.saturating_mul(body.saturating_add(1)))
            }
            "func.call" => {
                let callee = match operation.attr("callee") {
                    Some(everest_ir::attr::Attribute::Str(s))
                    | Some(everest_ir::attr::Attribute::SymbolRef(s)) => s.clone(),
                    _ => return None,
                };
                self.function_cycles(&callee)
            }
            "dfg.graph" => self.graph_cycles(op_id),
            _ => {
                let mut total = self.op_cycles(&operation);
                for &region in &operation.regions {
                    for &block in &self.module.region(region).blocks.clone() {
                        for &inner in &self.module.block(block).ops.clone() {
                            total = total.saturating_add(self.cycles_of_op(inner)?);
                        }
                    }
                }
                Some(total)
            }
        }
    }

    /// Memoized worst-case cycles of a named function.
    fn function_cycles(&mut self, symbol: &str) -> Option<u64> {
        if let Some(&cached) = self.memo.get(symbol) {
            return cached;
        }
        if self.in_progress.iter().any(|s| s == symbol) {
            // Recursion: no static bound.
            return None;
        }
        let func = self.module.lookup_symbol(symbol)?;
        self.in_progress.push(symbol.to_string());
        let mut total = Some(0u64);
        let operation = self.module.op(func).cloned();
        if let Some(operation) = operation {
            'body: for &region in &operation.regions {
                for &block in &self.module.region(region).blocks.clone() {
                    for &inner in &self.module.block(block).ops.clone() {
                        match (total, self.cycles_of_op(inner)) {
                            (Some(acc), Some(c)) => total = Some(acc.saturating_add(c)),
                            _ => {
                                total = None;
                                break 'body;
                            }
                        }
                    }
                }
            }
        }
        self.in_progress.pop();
        self.memo.insert(symbol.to_string(), total);
        total
    }

    /// Longest actor path through a `dfg.graph`, via the fixpoint
    /// solver. Channels are edges writer → reader; a graph cycle makes
    /// the path length diverge and the bound unprovable.
    fn graph_cycles(&mut self, graph_op: OpId) -> Option<u64> {
        // Collect actors and the channel wiring, like the structural
        // dfg lint: a node's last operand is its own output channel.
        let mut actors: Vec<OpId> = Vec::new();
        let mut writer_of: BTreeMap<everest_ir::ids::ValueId, usize> = BTreeMap::new();
        let mut reads: Vec<Vec<everest_ir::ids::ValueId>> = Vec::new();
        for nested in self.module.walk_nested(graph_op) {
            if nested == graph_op {
                continue;
            }
            let Some(operation) = self.module.op(nested) else {
                continue;
            };
            match operation.name.as_str() {
                "dfg.feed" => {
                    let index = actors.len();
                    actors.push(nested);
                    reads.push(Vec::new());
                    if let Some(&out) = operation.operands.first() {
                        writer_of.insert(out, index);
                    }
                }
                "dfg.node" => {
                    let index = actors.len();
                    actors.push(nested);
                    if let Some((&out, inputs)) = operation.operands.split_last() {
                        writer_of.insert(out, index);
                        reads.push(inputs.to_vec());
                    } else {
                        reads.push(Vec::new());
                    }
                }
                "dfg.sink" => {
                    actors.push(nested);
                    reads.push(operation.operands.clone());
                }
                _ => {}
            }
        }
        // Per-actor cost: resolve dfg.node callees to function bounds.
        let mut actor_cost = Vec::with_capacity(actors.len());
        for &actor in &actors {
            let operation = self.module.op(actor).cloned();
            let cost = match operation {
                Some(op) if op.name == "dfg.node" => {
                    let callee = match op.attr("callee") {
                        Some(everest_ir::attr::Attribute::Str(s))
                        | Some(everest_ir::attr::Attribute::SymbolRef(s)) => Some(s.clone()),
                        _ => None,
                    };
                    callee
                        .and_then(|c| self.function_cycles(&c))
                        .unwrap_or(DEFAULT_ACTOR_CYCLES)
                }
                _ => 1,
            };
            actor_cost.push(cost);
        }
        let mut graph = FlowGraph::new(actors.len());
        let mut edges = 0usize;
        for (index, read) in reads.iter().enumerate() {
            for channel in read {
                if let Some(&writer) = writer_of.get(channel) {
                    graph.add_edge(writer, index);
                    edges += 1;
                }
            }
        }
        let budget = 4 * (actors.len() + edges) * (actors.len() + 1) + 16;
        let result = solve(
            &graph,
            Direction::Forward,
            WorklistOrder::Fifo,
            vec![PathCycles::Bottom; actors.len()],
            |node, states: &[PathCycles]| {
                let input = graph
                    .preds(node)
                    .iter()
                    .fold(PathCycles::Bottom, |acc, &p| acc.join(&states[p]));
                match input {
                    PathCycles::Unbounded => PathCycles::Unbounded,
                    PathCycles::Bottom => PathCycles::Finite(actor_cost[node]),
                    PathCycles::Finite(c) => PathCycles::Finite(c.saturating_add(actor_cost[node])),
                }
            },
            budget,
        );
        if !result.converged {
            return None;
        }
        let mut longest = 0u64;
        for state in result.states {
            match state {
                PathCycles::Finite(c) => longest = longest.max(c),
                PathCycles::Unbounded => return None,
                PathCycles::Bottom => {}
            }
        }
        Some(longest)
    }
}

/// Proven worst-case latency per named kernel (`func.func` symbols and
/// `dfg.graph` symbols at module scope). `None` = unbounded.
pub fn kernel_bounds(module: &Module) -> BTreeMap<String, Option<LatencyBound>> {
    let mut model = LatencyModel::new(module);
    let mut bounds = BTreeMap::new();
    for op_id in module.walk_ops() {
        let Some(operation) = module.op(op_id) else {
            continue;
        };
        let Some(symbol) = operation.str_attr("sym_name").map(str::to_string) else {
            continue;
        };
        let cycles = match operation.name.as_str() {
            "func.func" => model.function_cycles(&symbol),
            "dfg.graph" => model.graph_cycles(op_id),
            _ => continue,
        };
        bounds.insert(
            symbol,
            cycles.map(|c| LatencyBound {
                cycles: c,
                us: model.us_of(c),
            }),
        );
    }
    bounds
}

/// The worst-case latency across every kernel in the module, in
/// microseconds — the figure the serving tier checks against a class
/// deadline. `None` when nothing is boundable (no kernels, a dynamic
/// loop bound, recursion, or a dfg cycle).
pub fn module_worst_case_us(module: &Module) -> Option<f64> {
    let bounds = kernel_bounds(module);
    if bounds.is_empty() {
        return None;
    }
    let mut worst = 0.0f64;
    for bound in bounds.values() {
        worst = worst.max(bound.as_ref()?.us);
    }
    Some(worst)
}

/// The worst-case-latency lint. See the module docs.
#[derive(Debug, Default)]
pub struct WorstCaseLatency;

impl Lint for WorstCaseLatency {
    fn name(&self) -> &'static str {
        "latency"
    }

    fn lints(&self) -> &'static [LintInfo] {
        LATENCY_LINTS
    }

    fn run(&self, _ctx: &Context, module: &Module, out: &mut Collector<'_>) {
        let mut model = LatencyModel::new(module);
        for op_id in module.walk_ops() {
            let Some(operation) = module.op(op_id) else {
                continue;
            };
            let Some(deadline_us) = operation.attr("deadline_us").and_then(|a| a.as_float()) else {
                continue;
            };
            let cycles = match operation.name.as_str() {
                "func.func" => operation
                    .str_attr("sym_name")
                    .map(str::to_string)
                    .and_then(|s| model.function_cycles(&s)),
                "dfg.graph" => model.graph_cycles(op_id),
                _ => model.cycles_of_op(op_id),
            };
            match cycles {
                Some(c) => {
                    let us = model.us_of(c);
                    if us > deadline_us {
                        out.emit(
                            DEADLINE,
                            op_id,
                            format!(
                                "proven worst-case latency {us:.3}us ({c} cycles at \
                                 {:.0}MHz) exceeds the declared deadline of \
                                 {deadline_us:.3}us",
                                model.costs.fmax_mhz()
                            ),
                        );
                    }
                }
                None => out.emit(
                    UNBOUNDED,
                    op_id,
                    format!(
                        "worst-case latency cannot be statically bounded, so the \
                         declared deadline of {deadline_us:.3}us is unprovable \
                         (dynamic loop bound, recursion, or dfg cycle)"
                    ),
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::attr::Attribute;
    use everest_ir::dialects::core::{build_for, build_func, const_index};
    use everest_ir::dialects::dataflow::{build_channel, build_graph};
    use everest_ir::types::{MemorySpace, Type};

    use crate::lint::Analyzer;

    fn analyzer() -> Analyzer {
        Analyzer::new().with_lint(Box::new(WorstCaseLatency))
    }

    /// fn body: 16 iterations of one f64 multiply (8 cycles) plus a
    /// load (2) and store (1), so the bound is mechanical to check.
    fn build_kernel(m: &mut Module, name: &str, trips: i64) -> OpId {
        let top = m.top_block();
        let (func, body) = build_func(m, top, name, &[], &[]);
        let buf = m
            .build_op(
                "memref.alloc",
                vec![],
                vec![Type::memref(&[1024], Type::F64, MemorySpace::Plm)],
            )
            .append_to(body);
        let buf = everest_ir::module::single_result(m, buf);
        let lb = const_index(m, body, 0);
        let ub = const_index(m, body, trips);
        let step = const_index(m, body, 1);
        let (_for_op, loop_body) = build_for(m, body, lb, ub, step);
        let iv = m.block(loop_body).args[0];
        let x = m
            .build_op("memref.load", vec![buf, iv], vec![Type::F64])
            .append_to(loop_body);
        let x = everest_ir::module::single_result(m, x);
        let y = m
            .build_op("arith.mulf", vec![x, x], vec![Type::F64])
            .append_to(loop_body);
        let y = everest_ir::module::single_result(m, y);
        m.build_op("memref.store", vec![y, buf, iv], vec![])
            .append_to(loop_body);
        m.build_op("func.return", vec![], vec![]).append_to(body);
        func
    }

    #[test]
    fn loop_bound_multiplies_body_cost() {
        let mut m = Module::new();
        build_kernel(&mut m, "k", 16);
        let bounds = kernel_bounds(&m);
        let bound = bounds["k"].expect("bounded");
        // Per iteration: load 2 + mulf 8 + store 1 + control 1 = 12;
        // constants and alloc are free.
        assert_eq!(bound.cycles, 16 * 12);
        assert!(bound.us > 0.0);
        assert_eq!(module_worst_case_us(&m), Some(bound.us));
    }

    #[test]
    fn deadline_violation_is_denied_and_feasible_deadline_is_clean() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let func = build_kernel(&mut m, "k", 1024);
        let bound_us = module_worst_case_us(&m).expect("bounded");
        // Claim half the proven bound: statically infeasible.
        if let Some(op) = m.op_mut(func) {
            op.attributes
                .insert("deadline_us".into(), Attribute::Float(bound_us / 2.0));
        }
        let report = analyzer().run(&ctx, &m);
        assert_eq!(report.by_lint(DEADLINE).len(), 1, "{}", report.to_text());
        assert!(report.has_denials());
        // Relax to double the bound: provably feasible.
        if let Some(op) = m.op_mut(func) {
            op.attributes
                .insert("deadline_us".into(), Attribute::Float(bound_us * 2.0));
        }
        let report = analyzer().run(&ctx, &m);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn dynamic_loop_bound_is_unbounded() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let (func, body) = build_func(&mut m, top, "k", &[Type::Index], &[]);
        let n = m.block(body).args[0];
        let lb = const_index(&mut m, body, 0);
        let step = const_index(&mut m, body, 1);
        build_for(&mut m, body, lb, n, step);
        m.build_op("func.return", vec![], vec![]).append_to(body);
        if let Some(op) = m.op_mut(func) {
            op.attributes
                .insert("deadline_us".into(), Attribute::Float(10.0));
        }
        assert_eq!(kernel_bounds(&m)["k"], None);
        assert_eq!(module_worst_case_us(&m), None);
        let report = analyzer().run(&ctx, &m);
        assert_eq!(report.by_lint(UNBOUNDED).len(), 1, "{}", report.to_text());
        assert!(!report.has_denials());
    }

    #[test]
    fn dfg_longest_path_uses_callee_bounds() {
        let mut m = Module::new();
        let top = m.top_block();
        build_kernel(&mut m, "stage", 16);
        let (graph, gbody) = build_graph(&mut m, top, "pipe");
        let c1 = build_channel(&mut m, gbody, Type::F64, 4);
        let c2 = build_channel(&mut m, gbody, Type::F64, 4);
        m.build_op("dfg.feed", vec![c1], vec![])
            .attr("name", "src")
            .append_to(gbody);
        m.build_op("dfg.node", vec![c1, c2], vec![])
            .attr("callee", Attribute::SymbolRef("stage".into()))
            .append_to(gbody);
        m.build_op("dfg.sink", vec![c2], vec![])
            .attr("name", "out")
            .append_to(gbody);
        m.build_op("dfg.yield", vec![], vec![]).append_to(gbody);
        let bounds = kernel_bounds(&m);
        let stage = bounds["stage"].expect("stage bounded").cycles;
        let pipe = bounds["pipe"].expect("pipe bounded").cycles;
        // feed (1) + stage + sink (1) along the longest path.
        assert_eq!(pipe, stage + 2);
        let _ = graph;
    }

    #[test]
    fn dfg_cycle_makes_the_bound_unprovable() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let (graph, gbody) = build_graph(&mut m, top, "ring");
        let a = build_channel(&mut m, gbody, Type::F64, 4);
        let b = build_channel(&mut m, gbody, Type::F64, 4);
        m.build_op("dfg.node", vec![a, b], vec![])
            .attr("callee", Attribute::SymbolRef("f".into()))
            .append_to(gbody);
        m.build_op("dfg.node", vec![b, a], vec![])
            .attr("callee", Attribute::SymbolRef("g".into()))
            .append_to(gbody);
        m.build_op("dfg.yield", vec![], vec![]).append_to(gbody);
        if let Some(op) = m.op_mut(graph) {
            op.attributes
                .insert("deadline_us".into(), Attribute::Float(10.0));
        }
        assert_eq!(kernel_bounds(&m)["ring"], None);
        let report = analyzer().run(&ctx, &m);
        assert_eq!(report.by_lint(UNBOUNDED).len(), 1, "{}", report.to_text());
    }
}
