//! # everest-analysis
//!
//! Diagnostics-collecting static analysis for the EVEREST SDK.
//!
//! Verification ([`verify_module`](everest_ir::verify::verify_module))
//! answers "is this module structurally legal?" and stops at the first
//! violation. This crate answers a different question — "is this module
//! *sensible* for the FPGA flow?" — and keeps going: every lint walks
//! the whole module (or ConDRust dataflow graph) and records all of its
//! findings as structured [`Diagnostic`]s carrying the op's structural
//! [`OpPath`](everest_ir::location::OpPath), the same location type
//! verification errors use.
//!
//! ## Lint set
//!
//! | analysis | lint ids |
//! |---|---|
//! | [`TypeCheck`] | `type-mismatch` |
//! | [`MemorySpaceCheck`] | `memory-space` |
//! | [`MemrefLifetime`] | `memref-use-after-free`, `memref-double-free`, `memref-leak`, `memref-out-of-bounds` |
//! | [`DfgStructure`] | `dfg-multiple-writers`, `dfg-unbuffered-cycle`, `dfg-dangling-port`, `dfg-channel-capacity` |
//! | [`HlsPreSynthesis`] | `hls-loop-invariant`, `hls-unpipelinable` |
//! | [`IntervalAnalysis`] | `interval-out-of-bounds`, `interval-dead-branch` |
//! | [`MemorySpaceEscape`] | `memory-space-escape` |
//! | [`WorstCaseLatency`] | `latency-deadline`, `latency-unbounded` |
//! | [`analyze_condrust_graph`] | `condrust-shared-state`, `condrust-dead-node` |
//!
//! The last four rows are powered by the generic [`fixpoint`] worklist
//! solver: interval propagation proves out-of-bounds accesses and dead
//! branches, channel-capacity analysis upgrades cycle detection into
//! deadlock/buffer-sizing proofs, escape analysis tracks host/fabric
//! data provenance through arbitrary value flow, and the latency
//! analysis propagates per-op HLS cycle estimates to provable
//! worst-case bounds per kernel (see [`latency::module_worst_case_us`],
//! which `everest-serve` consults at admission). The framework and the
//! abstract domains are documented in `docs/ANALYSIS.md`.
//!
//! Each lint id has a default [`Severity`] that [`LintLevels`] can
//! override per id (`allow`/`warn`/`deny`, like `rustc` lint flags).
//!
//! ## Examples
//!
//! ```
//! use everest_analysis::{Analyzer, Severity};
//! use everest_ir::dialects::core;
//! use everest_ir::module::Module;
//! use everest_ir::registry::Context;
//! use everest_ir::types::Type;
//!
//! let ctx = Context::with_all_dialects();
//! let mut m = Module::new();
//! let top = m.top_block();
//! let i = core::const_index(&mut m, top, 1);
//! // Float arithmetic on index values: legal arity, nonsense types.
//! m.build_op("arith.addf", [i, i], [Type::Index]).append_to(top);
//!
//! let report = Analyzer::with_default_lints().run(&ctx, &m);
//! assert!(report.has_denials());
//! assert_eq!(report.by_lint("type-mismatch").len(), 1);
//! println!("{}", report.to_text());
//! ```
//!
//! To run the analysis inside a pass pipeline, wrap it in an
//! [`AnalysisPass`]; to analyze a ConDRust program before lowering,
//! call [`Analyzer::run_graph`].

pub mod dataflow;
pub mod diagnostics;
pub mod escape;
pub mod fixpoint;
pub mod hls;
pub mod interval;
pub mod latency;
pub mod lifetime;
pub mod lint;
pub mod pass;
pub mod report;
pub mod typecheck;

pub use dataflow::{analyze_condrust_graph, DfgStructure};
pub use diagnostics::{Diagnostic, LintLevels, Severity};
pub use escape::MemorySpaceEscape;
pub use fixpoint::{solve, Direction, Fixpoint, FlowGraph, Lattice, WorklistOrder};
pub use hls::HlsPreSynthesis;
pub use interval::{Interval, IntervalAnalysis};
pub use latency::{LatencyBound, WorstCaseLatency};
pub use lifetime::MemrefLifetime;
pub use lint::{Analyzer, Collector, Lint, LintInfo};
pub use pass::AnalysisPass;
pub use report::AnalysisReport;
pub use typecheck::{MemorySpaceCheck, TypeCheck};
