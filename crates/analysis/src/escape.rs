//! Memory-space escape analysis: a provenance fixpoint over SSA values
//! that tracks which memory spaces a value's *data* may originate from.
//!
//! The syntactic `memory-space` lint ([`crate::typecheck`]) inspects
//! one op at a time: a host-typed operand on `olympus.kernel`, a
//! mismatched `olympus.dma` direction, a cross-space `memref.copy`.
//! What it cannot see is data that *flows*: a scalar loaded from a host
//! buffer, carried through arithmetic or loop iter-args, and stored
//! element-wise into device or PLM memory — a CPU bounce that defeats
//! the DMA architecture without any single op looking wrong.
//!
//! This analysis runs a union-of-spaces fixpoint on the
//! [`crate::fixpoint`] solver. Every SSA value gets the set of spaces
//! its data may come from: a buffer seeds its declared space and
//! absorbs everything stored or copied into it; loads inherit the
//! buffer's set; arithmetic and aliasing ops union their operands.
//! `olympus.dma` deliberately does *not* propagate — the DMA engine is
//! the sanctioned host/fabric crossing, so data that moved through it
//! is laundered clean.
//!
//! Findings (`memory-space-escape`, warn):
//!
//! * a `memref.store` that moves host-origin data into fabric memory
//!   (device/PLM) or fabric-origin data back into host memory,
//!   element-wise, without an intervening DMA;
//! * an `olympus.kernel` operand whose data provenance includes the
//!   host even though its declared space is fabric-side (the direct
//!   host-typed-operand case stays with the syntactic lint).
//!
//! On-fabric crossings (device ↔ PLM) are normal datapath traffic and
//! are never reported.

use everest_ir::ids::ValueId;
use everest_ir::module::{Module, Operation};
use everest_ir::registry::Context;
use everest_ir::types::{MemorySpace, Type};

use crate::diagnostics::Severity;
use crate::fixpoint::{solve, Direction, FlowGraph, Lattice, WorklistOrder};
use crate::lint::{Collector, Lint, LintInfo};

/// Lints implemented by [`MemorySpaceEscape`].
pub const ESCAPE_LINTS: &[LintInfo] = &[LintInfo {
    id: "memory-space-escape",
    description: "data crosses the host/fabric boundary without going through olympus.dma",
    default_severity: Severity::Warn,
}];

const ID: &str = "memory-space-escape";

/// A set of memory spaces, as a bitmask lattice (union = join).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceSet(u8);

const HOST: u8 = 1 << 0;
const DEVICE: u8 = 1 << 1;
const PLM: u8 = 1 << 2;

impl SpaceSet {
    /// The singleton set for one space.
    pub fn of(space: MemorySpace) -> SpaceSet {
        SpaceSet(match space {
            MemorySpace::Host => HOST,
            MemorySpace::Device => DEVICE,
            MemorySpace::Plm => PLM,
        })
    }

    /// True when the set may include host memory.
    pub fn has_host(&self) -> bool {
        self.0 & HOST != 0
    }

    /// True when the set may include fabric memory (device or PLM).
    pub fn has_fabric(&self) -> bool {
        self.0 & (DEVICE | PLM) != 0
    }

    fn describe(&self) -> String {
        let mut names = Vec::new();
        if self.0 & HOST != 0 {
            names.push("host");
        }
        if self.0 & DEVICE != 0 {
            names.push("device");
        }
        if self.0 & PLM != 0 {
            names.push("plm");
        }
        names.join("+")
    }
}

impl Lattice for SpaceSet {
    fn bottom() -> SpaceSet {
        SpaceSet(0)
    }

    fn join(&self, other: &SpaceSet) -> SpaceSet {
        SpaceSet(self.0 | other.0)
    }
}

fn declared_space(module: &Module, value: ValueId) -> Option<MemorySpace> {
    match module.value_type(value) {
        Type::MemRef { space, .. } => Some(*space),
        _ => None,
    }
}

/// Per-value provenance rule: a constant seed unioned with the facts of
/// `sources`. Uniform shape keeps the transfer trivially monotone.
#[derive(Debug, Clone, Default)]
struct Rule {
    seed: SpaceSet,
    sources: Vec<ValueId>,
}

fn build_rules(module: &Module) -> Vec<Rule> {
    let mut rules: Vec<Rule> = vec![Rule::default(); module.num_values()];
    // Buffers seed their declared space (their initial contents live
    // there); everything else starts empty.
    for (index, rule) in rules.iter_mut().enumerate() {
        let value = ValueId::from_raw(index as u32);
        if let Some(space) = declared_space(module, value) {
            rule.seed = SpaceSet::of(space);
        }
    }
    for op_id in module.walk_ops() {
        let Some(operation) = module.op(op_id) else {
            continue;
        };
        match operation.name.as_str() {
            // Stores flow the stored value's provenance into the buffer.
            "memref.store" => {
                if let [value, base, ..] = operation.operands.as_slice() {
                    rules[base.index()].sources.push(*value);
                }
            }
            // Copies flow the source buffer's provenance into the
            // destination buffer.
            "memref.copy" => {
                if let [src, dst, ..] = operation.operands.as_slice() {
                    rules[dst.index()].sources.push(*src);
                }
            }
            // DMA is the sanctioned crossing: provenance is laundered,
            // nothing propagates.
            "olympus.dma" => {}
            "scf.for" => {
                // Loop results and iter-args alias their init and yield
                // values, like the interval analysis.
                let yields: Vec<&Operation> = operation
                    .regions
                    .iter()
                    .flat_map(|&r| module.region(r).blocks.iter())
                    .flat_map(|&b| module.block(b).ops.iter())
                    .filter_map(|&o| module.op(o))
                    .filter(|o| o.name == "scf.yield")
                    .collect();
                let inits = &operation.operands[3.min(operation.operands.len())..];
                for (index, &result) in operation.results.iter().enumerate() {
                    if let Some(&init) = inits.get(index) {
                        rules[result.index()].sources.push(init);
                    }
                    for y in &yields {
                        if let Some(&v) = y.operands.get(index) {
                            rules[result.index()].sources.push(v);
                        }
                    }
                }
                if let Some(&region) = operation.regions.first() {
                    if let Some(&entry) = module.region(region).blocks.first() {
                        for (index, &arg) in module.block(entry).args.iter().enumerate().skip(1) {
                            if let Some(&init) = inits.get(index - 1) {
                                rules[arg.index()].sources.push(init);
                            }
                            for y in &yields {
                                if let Some(&v) = y.operands.get(index - 1) {
                                    rules[arg.index()].sources.push(v);
                                }
                            }
                        }
                    }
                }
            }
            // Default: every result's data may come from any operand
            // (loads inherit the buffer, arithmetic unions inputs,
            // selects and casts alias).
            _ => {
                for &result in &operation.results {
                    rules[result.index()]
                        .sources
                        .extend(operation.operands.iter().copied());
                }
            }
        }
    }
    rules
}

/// Computes the provenance fixpoint for every SSA value.
pub fn compute(module: &Module) -> Vec<SpaceSet> {
    let rules = build_rules(module);
    let n = rules.len();
    let mut graph = FlowGraph::new(n);
    let mut edges = 0usize;
    for (index, rule) in rules.iter().enumerate() {
        for &source in &rule.sources {
            graph.add_edge(source.index(), index);
            edges += 1;
        }
    }
    // Height-3 lattice: a generous linear budget always converges.
    let budget = 8 * (n + edges) + 8;
    solve(
        &graph,
        Direction::Forward,
        WorklistOrder::Fifo,
        vec![SpaceSet::bottom(); n],
        |node, states: &[SpaceSet]| {
            rules[node]
                .sources
                .iter()
                .fold(rules[node].seed, |acc, v| acc.join(&states[v.index()]))
        },
        budget,
    )
    .states
}

/// The memory-space escape lint. See the module docs.
#[derive(Debug, Default)]
pub struct MemorySpaceEscape;

impl Lint for MemorySpaceEscape {
    fn name(&self) -> &'static str {
        "memory-space-escape"
    }

    fn lints(&self) -> &'static [LintInfo] {
        ESCAPE_LINTS
    }

    fn run(&self, _ctx: &Context, module: &Module, out: &mut Collector<'_>) {
        let facts = compute(module);
        let of = |v: ValueId| facts.get(v.index()).copied().unwrap_or_default();
        for op_id in module.walk_ops() {
            let Some(operation) = module.op(op_id) else {
                continue;
            };
            match operation.name.as_str() {
                "memref.store" => {
                    let [value, base, ..] = operation.operands.as_slice() else {
                        continue;
                    };
                    let Some(dst_space) = declared_space(module, *base) else {
                        continue;
                    };
                    let provenance = of(*value);
                    if dst_space != MemorySpace::Host && provenance.has_host() {
                        out.emit(
                            ID,
                            op_id,
                            format!(
                                "host-origin data (provenance {}) is stored element-wise \
                                 into {dst_space} memory; stage the transfer through \
                                 olympus.dma",
                                provenance.describe()
                            ),
                        );
                    } else if dst_space == MemorySpace::Host && provenance.has_fabric() {
                        out.emit(
                            ID,
                            op_id,
                            format!(
                                "fabric-origin data (provenance {}) is read back \
                                 element-wise into host memory; stage the transfer \
                                 through olympus.dma",
                                provenance.describe()
                            ),
                        );
                    }
                }
                "olympus.kernel" => {
                    for &operand in &operation.operands {
                        let Some(space) = declared_space(module, operand) else {
                            continue;
                        };
                        // The direct host-typed case belongs to the
                        // syntactic memory-space lint.
                        if space != MemorySpace::Host && of(operand).has_host() {
                            out.emit(
                                ID,
                                op_id,
                                format!(
                                    "{space}-space kernel buffer carries host-origin data \
                                     (provenance {}) that never passed through olympus.dma",
                                    of(operand).describe()
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::dialects::core::{alloc, const_f64, const_index};

    use crate::lint::Analyzer;

    fn analyzer() -> Analyzer {
        Analyzer::new().with_lint(Box::new(MemorySpaceEscape))
    }

    fn memref(space: MemorySpace) -> Type {
        Type::memref(&[8], Type::F64, space)
    }

    /// load host → store device: the CPU bounce the syntactic lint
    /// cannot see (every individual op is well-typed).
    #[test]
    fn cpu_bounce_from_host_to_device_is_flagged() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let host = alloc(&mut m, top, memref(MemorySpace::Host));
        let dev = alloc(&mut m, top, memref(MemorySpace::Device));
        let i = const_index(&mut m, top, 0);
        let loaded = m
            .build_op("memref.load", vec![host, i], vec![Type::F64])
            .append_to(top);
        let loaded = everest_ir::module::single_result(&m, loaded);
        m.build_op("memref.store", vec![loaded, dev, i], vec![])
            .append_to(top);
        let report = analyzer().run(&ctx, &m);
        assert_eq!(report.by_lint(ID).len(), 1, "{}", report.to_text());
    }

    /// The same movement through olympus.dma is clean: DMA launders.
    #[test]
    fn dma_staged_transfer_is_clean() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let host = alloc(&mut m, top, memref(MemorySpace::Host));
        let dev = alloc(&mut m, top, memref(MemorySpace::Device));
        m.build_op("olympus.dma", vec![host, dev], vec![])
            .attr("direction", "h2d")
            .append_to(top);
        let i = const_index(&mut m, top, 0);
        let loaded = m
            .build_op("memref.load", vec![dev, i], vec![Type::F64])
            .append_to(top);
        let loaded = everest_ir::module::single_result(&m, loaded);
        let plm = alloc(&mut m, top, memref(MemorySpace::Plm));
        m.build_op("memref.store", vec![loaded, plm, i], vec![])
            .append_to(top);
        let report = analyzer().run(&ctx, &m);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    /// Device → PLM element traffic is normal on-fabric datapath.
    #[test]
    fn on_fabric_crossing_is_not_reported() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let dev = alloc(&mut m, top, memref(MemorySpace::Device));
        let plm = alloc(&mut m, top, memref(MemorySpace::Plm));
        let i = const_index(&mut m, top, 0);
        let loaded = m
            .build_op("memref.load", vec![dev, i], vec![Type::F64])
            .append_to(top);
        let loaded = everest_ir::module::single_result(&m, loaded);
        m.build_op("memref.store", vec![loaded, plm, i], vec![])
            .append_to(top);
        let report = analyzer().run(&ctx, &m);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    /// Host provenance carried through arithmetic is still tracked.
    #[test]
    fn provenance_survives_arithmetic() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let host = alloc(&mut m, top, memref(MemorySpace::Host));
        let dev = alloc(&mut m, top, memref(MemorySpace::Device));
        let i = const_index(&mut m, top, 0);
        let loaded = m
            .build_op("memref.load", vec![host, i], vec![Type::F64])
            .append_to(top);
        let loaded = everest_ir::module::single_result(&m, loaded);
        let two = const_f64(&mut m, top, 2.0);
        let scaled = m
            .build_op("arith.mulf", vec![loaded, two], vec![Type::F64])
            .append_to(top);
        let scaled = everest_ir::module::single_result(&m, scaled);
        m.build_op("memref.store", vec![scaled, dev, i], vec![])
            .append_to(top);
        let report = analyzer().run(&ctx, &m);
        assert_eq!(report.by_lint(ID).len(), 1, "{}", report.to_text());
    }

    /// A device buffer filled by memref.copy from host carries host
    /// provenance into the kernel it is passed to.
    #[test]
    fn host_data_reaching_a_kernel_without_dma_is_flagged() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let host = alloc(&mut m, top, memref(MemorySpace::Host));
        let dev = alloc(&mut m, top, memref(MemorySpace::Device));
        m.build_op("memref.copy", vec![host, dev], vec![])
            .append_to(top);
        m.build_op("olympus.kernel", vec![dev], vec![])
            .attr("callee", everest_ir::attr::Attribute::SymbolRef("k".into()))
            .append_to(top);
        let report = analyzer().run(&ctx, &m);
        // One finding at the kernel (the cross-space copy itself is the
        // syntactic lint's business).
        assert_eq!(report.by_lint(ID).len(), 1, "{}", report.to_text());
    }
}
