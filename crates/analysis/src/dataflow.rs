//! Dataflow structure lints: channel races, deadlock-prone cycles and
//! dangling ports over the `dfg` dialect, plus the same class of
//! checks over ConDRust [`DataflowGraph`]s before lowering.
//!
//! Beyond the one-walk structural checks, `dfg-channel-capacity` runs a
//! token-reachability fixpoint on the [`crate::fixpoint`] solver to
//! turn the syntactic "capacity-1 cycle" heuristic into a real
//! deadlock/buffer-sizing analysis: rings no feed can reach are certain
//! deadlocks, and reachable rings get a minimal-capacity suggestion.

use std::collections::{BTreeMap, HashMap};

use everest_condrust::graph::{DataflowGraph, NodeKind};
use everest_ir::ids::{OpId, ValueId};
use everest_ir::module::Module;
use everest_ir::registry::Context;

use crate::diagnostics::{Diagnostic, LintLevels, Severity};
use crate::fixpoint::{solve, Direction, FlowGraph, Lattice, WorklistOrder};
use crate::lint::{Collector, Lint, LintInfo};
use crate::report::AnalysisReport;

/// Structural analysis of `dfg.graph` ops.
///
/// The lowering convention (see `everest-condrust`) is that a
/// `dfg.node`'s operands are its input channels followed by its own
/// output channel last; `dfg.feed` writes its operand channel and
/// `dfg.sink` reads it.
#[derive(Debug, Clone, Copy, Default)]
pub struct DfgStructure;

const DFG_LINTS: &[LintInfo] = &[
    LintInfo {
        id: "dfg-multiple-writers",
        description: "two producers write one FIFO: nondeterministic merge",
        default_severity: Severity::Deny,
    },
    LintInfo {
        id: "dfg-unbuffered-cycle",
        description: "cycle through capacity-1 channels: deadlock risk",
        default_severity: Severity::Warn,
    },
    LintInfo {
        id: "dfg-dangling-port",
        description: "channel with no writer or no reader",
        default_severity: Severity::Warn,
    },
    LintInfo {
        id: "dfg-channel-capacity",
        description: "cycle deadlock / buffer-sizing analysis with minimal-capacity suggestions",
        default_severity: Severity::Warn,
    },
];

impl Lint for DfgStructure {
    fn name(&self) -> &'static str {
        "dfg-structure"
    }

    fn lints(&self) -> &'static [LintInfo] {
        DFG_LINTS
    }

    fn run(&self, ctx: &Context, module: &Module, out: &mut Collector<'_>) {
        let _ = ctx;
        for op in module.walk_ops() {
            let Some(operation) = module.op(op) else {
                continue;
            };
            if operation.name == "dfg.graph" {
                analyze_graph_op(module, op, out);
            }
        }
    }
}

#[derive(Debug, Default)]
struct ChannelUse {
    /// Ops producing into this channel.
    writers: Vec<OpId>,
    /// Ops consuming from this channel.
    readers: Vec<OpId>,
    /// FIFO capacity (`capacity` attr; 1 when absent).
    capacity: i64,
    /// The defining `dfg.channel` op.
    def: Option<OpId>,
}

fn analyze_graph_op(module: &Module, graph: OpId, out: &mut Collector<'_>) {
    let mut channels: BTreeMap<ValueId, ChannelUse> = BTreeMap::new();
    let body_ops = module.walk_nested(graph);

    for &op in &body_ops {
        let Some(operation) = module.op(op) else {
            continue;
        };
        match operation.name.as_str() {
            "dfg.channel" => {
                if let Some(&c) = operation.results.first() {
                    let entry = channels.entry(c).or_default();
                    entry.capacity = operation.int_attr("capacity").unwrap_or(1);
                    entry.def = Some(op);
                }
            }
            "dfg.feed" => {
                if let Some(&c) = operation.operands.first() {
                    channels.entry(c).or_default().writers.push(op);
                }
            }
            "dfg.sink" => {
                if let Some(&c) = operation.operands.first() {
                    channels.entry(c).or_default().readers.push(op);
                }
            }
            "dfg.node" => {
                let Some((&output, inputs)) = operation.operands.split_last() else {
                    continue;
                };
                channels.entry(output).or_default().writers.push(op);
                for &c in inputs {
                    channels.entry(c).or_default().readers.push(op);
                }
            }
            _ => {}
        }
    }

    for usage in channels.values() {
        let Some(def) = usage.def else {
            continue;
        };
        if usage.writers.len() > 1 {
            out.emit(
                "dfg-multiple-writers",
                def,
                format!(
                    "{} producers write this channel; FIFO merge order is nondeterministic",
                    usage.writers.len()
                ),
            );
        }
        if usage.writers.is_empty() {
            out.emit("dfg-dangling-port", def, "channel is never written");
        }
        if usage.readers.is_empty() {
            out.emit("dfg-dangling-port", def, "channel is never read");
        }
    }

    check_unbuffered_cycles(&channels, out);
    check_channel_capacity(module, &channels, out);
}

/// Deadlock heuristic: consider only edges through channels whose FIFO
/// capacity is 1 (rendezvous semantics). Any node cycle in that
/// subgraph can fill-and-block regardless of schedule, so every node
/// on such a cycle is flagged.
fn check_unbuffered_cycles(channels: &BTreeMap<ValueId, ChannelUse>, out: &mut Collector<'_>) {
    // Edges writer -> reader over capacity-1 channels.
    let mut succs: HashMap<OpId, Vec<OpId>> = HashMap::new();
    let mut indegree: HashMap<OpId, usize> = HashMap::new();
    for usage in channels.values() {
        if usage.capacity > 1 {
            continue;
        }
        for &w in &usage.writers {
            for &r in &usage.readers {
                succs.entry(w).or_default().push(r);
                *indegree.entry(r).or_insert(0) += 1;
                indegree.entry(w).or_insert(0);
            }
        }
    }
    // Kahn pruning: whatever survives sits on a cycle.
    let mut queue: Vec<OpId> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    while let Some(n) = queue.pop() {
        indegree.remove(&n);
        for &s in succs.get(&n).into_iter().flatten() {
            if let Some(d) = indegree.get_mut(&s) {
                *d -= 1;
                if *d == 0 {
                    queue.push(s);
                }
            }
        }
    }
    let mut cyclic: Vec<OpId> = indegree.into_keys().collect();
    cyclic.sort();
    for op in cyclic {
        out.emit(
            "dfg-unbuffered-cycle",
            op,
            "node sits on a cycle of capacity-1 channels; the FIFOs can \
             fill and block in a ring (deadlock)",
        );
    }
}

/// Token-reachability lattice: false = no token can ever arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TokenReach(bool);

impl Lattice for TokenReach {
    fn bottom() -> TokenReach {
        TokenReach(false)
    }
    fn join(&self, other: &TokenReach) -> TokenReach {
        TokenReach(self.0 || other.0)
    }
}

/// Channel-capacity analysis: a token-reachability fixpoint plus a
/// strongly-connected-component sweep over the actor graph.
///
/// * A nontrivial SCC (a ring of actors) that no `dfg.feed` can reach
///   carries no tokens ever: a certain token deadlock, reported on
///   every actor of the ring.
/// * A reachable ring with total internal FIFO capacity `C` over `L`
///   actors needs at least `L + 1` slots for a wavefront to circulate
///   without fill-and-block; rings below that get a minimal-capacity
///   suggestion on the ring's first channel definition.
fn check_channel_capacity(
    module: &Module,
    channels: &BTreeMap<ValueId, ChannelUse>,
    out: &mut Collector<'_>,
) {
    // Actor universe, deterministically ordered by OpId.
    let mut actor_set: Vec<OpId> = Vec::new();
    for usage in channels.values() {
        actor_set.extend(usage.writers.iter().copied());
        actor_set.extend(usage.readers.iter().copied());
    }
    actor_set.sort();
    actor_set.dedup();
    let index_of: BTreeMap<OpId, usize> =
        actor_set.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let is_feed = |op: OpId| module.op(op).is_some_and(|o| o.name == "dfg.feed");

    // Edges writer -> reader through every channel (any capacity).
    let mut graph = FlowGraph::new(actor_set.len());
    for usage in channels.values() {
        for &w in &usage.writers {
            for &r in &usage.readers {
                graph.add_edge(index_of[&w], index_of[&r]);
            }
        }
    }

    // Fixpoint: a token can reach an actor iff it is a feed or any
    // predecessor can produce (optimistic single-token reachability).
    let budget = 4 * (actor_set.len() + 1) * (actor_set.len() + 1);
    let reach = solve(
        &graph,
        Direction::Forward,
        WorklistOrder::Fifo,
        vec![TokenReach::bottom(); actor_set.len()],
        |node, states: &[TokenReach]| {
            if is_feed(actor_set[node]) {
                TokenReach(true)
            } else {
                graph
                    .preds(node)
                    .iter()
                    .fold(TokenReach::bottom(), |acc, &p| acc.join(&states[p]))
            }
        },
        budget,
    );

    for scc in strongly_connected(&graph) {
        let nontrivial = scc.len() > 1 || scc.first().is_some_and(|&n| graph.succs(n).contains(&n));
        if !nontrivial {
            continue;
        }
        let reachable = scc.iter().any(|&n| reach.states[n].0);
        if !reachable {
            let mut ring: Vec<OpId> = scc.iter().map(|&n| actor_set[n]).collect();
            ring.sort();
            for op in ring {
                out.emit(
                    "dfg-channel-capacity",
                    op,
                    "actor sits on a ring no feed can reach; no token can ever \
                     enter the cycle (certain deadlock) — feed the ring or seed \
                     an initial token",
                );
            }
            continue;
        }
        // Internal capacity of the ring: channels whose writer and
        // reader both sit inside the SCC.
        let in_scc = |op: &OpId| index_of.get(op).is_some_and(|i| scc.contains(i));
        let mut capacity = 0i64;
        let mut anchor: Option<OpId> = None;
        for usage in channels.values() {
            if usage.writers.iter().any(in_scc) && usage.readers.iter().any(in_scc) {
                capacity += usage.capacity.max(0);
                if let Some(def) = usage.def {
                    anchor = Some(anchor.map_or(def, |a: OpId| a.min(def)));
                }
            }
        }
        let needed = scc.len() as i64 + 1;
        if capacity < needed {
            let Some(def) = anchor else {
                continue;
            };
            out.emit(
                "dfg-channel-capacity",
                def,
                format!(
                    "ring of {} actors has total FIFO capacity {capacity}; a \
                     circulating wavefront needs at least {needed} slots to avoid \
                     fill-and-block — raise total ring capacity by {}",
                    scc.len(),
                    needed - capacity
                ),
            );
        }
    }
}

/// Iterative Kosaraju SCC over a [`FlowGraph`], deterministic in node
/// index order. Returns components as sorted index lists.
fn strongly_connected(graph: &FlowGraph) -> Vec<Vec<usize>> {
    let n = graph.len();
    // Pass 1: finish order by iterative DFS on successors.
    let mut visited = vec![false; n];
    let mut finish: Vec<usize> = Vec::with_capacity(n);
    for root in 0..n {
        if visited[root] {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        visited[root] = true;
        while let Some(&(node, next)) = stack.last() {
            if next < graph.succs(node).len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let succ = graph.succs(node)[next];
                if !visited[succ] {
                    visited[succ] = true;
                    stack.push((succ, 0));
                }
            } else {
                finish.push(node);
                stack.pop();
            }
        }
    }
    // Pass 2: DFS on predecessors in reverse finish order.
    let mut component = vec![usize::MAX; n];
    let mut count = 0usize;
    for &root in finish.iter().rev() {
        if component[root] != usize::MAX {
            continue;
        }
        let mut stack = vec![root];
        component[root] = count;
        while let Some(node) = stack.pop() {
            for &pred in graph.preds(node) {
                if component[pred] == usize::MAX {
                    component[pred] = count;
                    stack.push(pred);
                }
            }
        }
        count += 1;
    }
    let mut sccs: Vec<Vec<usize>> = vec![Vec::new(); count];
    for (node, &c) in component.iter().enumerate() {
        sccs[c].push(node);
    }
    for scc in &mut sccs {
        scc.sort_unstable();
    }
    sccs
}

// ---------------------------------------------------------------------------
// ConDRust graph lints
// ---------------------------------------------------------------------------

/// Lint ids emitted by [`analyze_condrust_graph`].
pub const CONDRUST_LINTS: &[LintInfo] = &[
    LintInfo {
        id: "condrust-shared-state",
        description: "two stateful operators share one state object",
        default_severity: Severity::Warn,
    },
    LintInfo {
        id: "condrust-dead-node",
        description: "operator output is never consumed",
        default_severity: Severity::Warn,
    },
];

/// Checks an extracted ConDRust dataflow graph before lowering.
///
/// * `condrust-shared-state`: two `StatefulMap` nodes built from the
///   same state constructor mutate one state object; replicating or
///   reordering them races, so the executor must serialize them —
///   usually a porting mistake.
/// * `condrust-dead-node`: a non-sink node whose output no one
///   consumes is dead work in every iteration.
pub fn analyze_condrust_graph(graph: &DataflowGraph, levels: &LintLevels) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    let mut emit = |id: &str, default: Severity, message: String| {
        let severity = levels.effective(id, default);
        if severity != Severity::Allow {
            report.diagnostics.push(Diagnostic {
                lint: id.to_string(),
                severity,
                op: None,
                path: None,
                message,
            });
        }
    };

    // Shared state: group stateful nodes by constructor.
    let mut by_ctor: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for node in &graph.nodes {
        if let NodeKind::StatefulMap { ctor, .. } = &node.kind {
            by_ctor.entry(ctor.as_str()).or_default().push(&node.label);
        }
    }
    for (ctor, labels) in by_ctor {
        if labels.len() > 1 {
            emit(
                "condrust-shared-state",
                Severity::Warn,
                format!(
                    "state '{ctor}' is mutated by {} operators ({}); they \
                     serialize the pipeline and race under replication",
                    labels.len(),
                    labels.join(", ")
                ),
            );
        }
    }

    // Dead nodes: outputs nobody consumes.
    let consumers = graph.consumers();
    for node in &graph.nodes {
        if matches!(node.kind, NodeKind::Sink) {
            continue;
        }
        if consumers[node.id].is_empty() {
            emit(
                "condrust-dead-node",
                Severity::Warn,
                format!(
                    "operator '{}' computes a value no downstream node consumes",
                    node.label
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_condrust::parse_function;
    use everest_ir::attr::Attribute;
    use everest_ir::dialects::dataflow::{build_channel, build_graph};
    use everest_ir::types::Type;

    use crate::lint::Analyzer;

    fn run(m: &Module) -> AnalysisReport {
        Analyzer::new()
            .with_lint(Box::new(DfgStructure))
            .run(&Context::with_all_dialects(), m)
    }

    fn node(m: &mut Module, block: everest_ir::BlockId, operands: Vec<ValueId>, callee: &str) {
        m.build_op("dfg.node", operands, [])
            .attr("callee", Attribute::SymbolRef(callee.into()))
            .append_to(block);
    }

    #[test]
    fn well_formed_pipeline_is_clean() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "pipe");
        let c0 = build_channel(&mut m, body, Type::F64, 16);
        let c1 = build_channel(&mut m, body, Type::F64, 16);
        m.build_op("dfg.feed", [c0], [])
            .attr("name", "in")
            .append_to(body);
        node(&mut m, body, vec![c0, c1], "stage");
        m.build_op("dfg.sink", [c1], [])
            .attr("name", "out")
            .append_to(body);
        m.build_op("dfg.yield", [], []).append_to(body);
        let report = run(&m);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn two_writers_on_one_channel_are_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "race");
        let c0 = build_channel(&mut m, body, Type::F64, 16);
        let out_c = build_channel(&mut m, body, Type::F64, 16);
        m.build_op("dfg.feed", [c0], [])
            .attr("name", "in")
            .append_to(body);
        // Both nodes write out_c (last operand).
        node(&mut m, body, vec![c0, out_c], "a");
        node(&mut m, body, vec![c0, out_c], "b");
        m.build_op("dfg.sink", [out_c], [])
            .attr("name", "out")
            .append_to(body);
        m.build_op("dfg.yield", [], []).append_to(body);
        let report = run(&m);
        assert_eq!(report.by_lint("dfg-multiple-writers").len(), 1);
        assert!(report.has_denials());
        assert!(report.diagnostics[0].message.contains("2 producers"));
    }

    #[test]
    fn unread_and_unwritten_channels_are_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "dangling");
        let c0 = build_channel(&mut m, body, Type::F64, 16);
        let c1 = build_channel(&mut m, body, Type::F64, 16);
        // c0 written but never read; c1 read but never written.
        m.build_op("dfg.feed", [c0], [])
            .attr("name", "in")
            .append_to(body);
        m.build_op("dfg.sink", [c1], [])
            .attr("name", "out")
            .append_to(body);
        m.build_op("dfg.yield", [], []).append_to(body);
        let report = run(&m);
        assert_eq!(report.by_lint("dfg-dangling-port").len(), 2);
    }

    #[test]
    fn capacity_one_cycle_is_flagged_but_buffered_cycle_is_not() {
        // a -> b -> a through capacity-1 channels: flagged.
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "ring");
        let ab = build_channel(&mut m, body, Type::F64, 1);
        let ba = build_channel(&mut m, body, Type::F64, 1);
        node(&mut m, body, vec![ba, ab], "a");
        node(&mut m, body, vec![ab, ba], "b");
        m.build_op("dfg.yield", [], []).append_to(body);
        let report = run(&m);
        assert_eq!(report.by_lint("dfg-unbuffered-cycle").len(), 2);

        // Same ring with deep FIFOs: not flagged.
        let mut m2 = Module::new();
        let top2 = m2.top_block();
        let (_g2, body2) = build_graph(&mut m2, top2, "ring2");
        let ab2 = build_channel(&mut m2, body2, Type::F64, 64);
        let ba2 = build_channel(&mut m2, body2, Type::F64, 64);
        node(&mut m2, body2, vec![ba2, ab2], "a");
        node(&mut m2, body2, vec![ab2, ba2], "b");
        m2.build_op("dfg.yield", [], []).append_to(body2);
        assert!(run(&m2).by_lint("dfg-unbuffered-cycle").is_empty());
    }

    #[test]
    fn unfed_ring_is_a_certain_token_deadlock() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "ring");
        let ab = build_channel(&mut m, body, Type::F64, 64);
        let ba = build_channel(&mut m, body, Type::F64, 64);
        node(&mut m, body, vec![ba, ab], "a");
        node(&mut m, body, vec![ab, ba], "b");
        m.build_op("dfg.yield", [], []).append_to(body);
        let report = run(&m);
        let findings = report.by_lint("dfg-channel-capacity");
        assert_eq!(findings.len(), 2, "{}", report.to_text());
        assert!(findings[0].message.contains("no feed can reach"));
    }

    #[test]
    fn fed_ring_gets_a_minimal_capacity_suggestion() {
        // feed -> a <-> b with two capacity-1 ring channels: reachable,
        // but 2 slots for a 2-actor ring (needs 3).
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "fedring");
        let input = build_channel(&mut m, body, Type::F64, 16);
        let ab = build_channel(&mut m, body, Type::F64, 1);
        let ba = build_channel(&mut m, body, Type::F64, 1);
        m.build_op("dfg.feed", [input], [])
            .attr("name", "in")
            .append_to(body);
        node(&mut m, body, vec![input, ba, ab], "a");
        node(&mut m, body, vec![ab, ba], "b");
        m.build_op("dfg.yield", [], []).append_to(body);
        let report = run(&m);
        let findings = report.by_lint("dfg-channel-capacity");
        assert_eq!(findings.len(), 1, "{}", report.to_text());
        assert!(
            findings[0].message.contains("needs at least 3 slots"),
            "{}",
            findings[0].message
        );
        assert!(findings[0]
            .message
            .contains("raise total ring capacity by 1"));
    }

    #[test]
    fn fed_ring_with_enough_slack_is_not_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "buffered");
        let input = build_channel(&mut m, body, Type::F64, 16);
        let ab = build_channel(&mut m, body, Type::F64, 2);
        let ba = build_channel(&mut m, body, Type::F64, 2);
        m.build_op("dfg.feed", [input], [])
            .attr("name", "in")
            .append_to(body);
        node(&mut m, body, vec![input, ba, ab], "a");
        node(&mut m, body, vec![ab, ba], "b");
        m.build_op("dfg.yield", [], []).append_to(body);
        let report = run(&m);
        assert!(
            report.by_lint("dfg-channel-capacity").is_empty(),
            "{}",
            report.to_text()
        );
    }

    #[test]
    fn condrust_clean_pipeline_has_no_findings() {
        let f = parse_function(
            "fn f(xs: Vec<f64>) -> Vec<f64> {
                let mut out = Vec::new();
                for x in xs {
                    let y = g(x);
                    out.push(y);
                }
                out
            }",
        )
        .unwrap();
        let g = DataflowGraph::from_function(&f).unwrap();
        let report = analyze_condrust_graph(&g, &LintLevels::new());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn condrust_shared_state_and_dead_node_are_flagged() {
        let f = parse_function(
            "fn f(xs: Vec<f64>) -> Vec<f64> {
                let mut out = Vec::new();
                let mut acc = mk_acc();
                for x in xs {
                    let a = acc.fold(x);
                    let b = acc.scale(x);
                    let dead = h(x);
                    out.push(b);
                }
                out
            }",
        )
        .unwrap();
        let g = DataflowGraph::from_function(&f).unwrap();
        let report = analyze_condrust_graph(&g, &LintLevels::new());
        assert_eq!(report.by_lint("condrust-shared-state").len(), 1);
        // `a` and `dead` both have no consumers.
        assert_eq!(report.by_lint("condrust-dead-node").len(), 2);
        assert!(report.by_lint("condrust-shared-state")[0]
            .message
            .contains("mk_acc"));
    }

    #[test]
    fn condrust_levels_suppress_findings() {
        let f = parse_function(
            "fn f(xs: Vec<f64>) -> Vec<f64> {
                let mut out = Vec::new();
                for x in xs {
                    let a = g(x);
                    let b = h(x);
                    out.push(b);
                }
                out
            }",
        )
        .unwrap();
        let g = DataflowGraph::from_function(&f).unwrap();
        let levels = LintLevels::new().allow("condrust-dead-node");
        assert!(analyze_condrust_graph(&g, &levels).is_clean());
    }
}
