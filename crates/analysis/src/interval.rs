//! Interval (constant-range) propagation over SSA values, built on the
//! [`crate::fixpoint`] solver.
//!
//! Every integer-like SSA value gets an [`Interval`] fact; transfer
//! functions abstractly evaluate the defining operation (constants,
//! `arith` integer arithmetic, comparisons, selects, `scf.for`
//! induction variables and iter-args, and `func.call`/`func.return`
//! boundaries under a closed-world assumption). The resulting fixpoint
//! powers two lints the syntactic walks cannot express:
//!
//! * `interval-out-of-bounds` (deny) — a `memref.load`/`memref.store`
//!   index whose *entire* proven range lies outside the static extent.
//!   Only proven violations are reported, so flow-produced IR stays
//!   deny-clean; a possibly-out-of-range index is not a finding.
//! * `interval-dead-branch` (warn) — an `arith.select` whose condition
//!   is statically decided, or an `scf.for` that provably executes zero
//!   iterations.
//!
//! Indices that are literally `arith.constant` are left to the
//! syntactic `memref-out-of-bounds` lint in [`crate::lifetime`]; this
//! analysis reports the flows that lint misses (arithmetic over
//! constants, induction variables, values returned from callees).

use everest_ir::ids::{OpId, ValueId};
use everest_ir::module::{Module, Operation, ValueDef};
use everest_ir::registry::Context;
use everest_ir::types::Type;

use crate::diagnostics::Severity;
use crate::fixpoint::{solve, Direction, FlowGraph, Lattice, WorklistOrder};
use crate::lint::{Collector, Lint, LintInfo};

/// Lints implemented by [`IntervalAnalysis`].
pub const INTERVAL_LINTS: &[LintInfo] = &[
    LintInfo {
        id: "interval-out-of-bounds",
        description: "memref access whose proven index range lies entirely outside the extent",
        default_severity: Severity::Deny,
    },
    LintInfo {
        id: "interval-dead-branch",
        description: "select or loop whose outcome is statically decided",
        default_severity: Severity::Warn,
    },
];

const OOB: &str = "interval-out-of-bounds";
const DEAD: &str = "interval-dead-branch";

/// Number of times a value's fact may change before its moving bound is
/// widened to infinity. Keeps loop-carried arithmetic finite-height.
const WIDEN_AFTER: u32 = 8;

/// An integer range with `i64::MIN`/`i64::MAX` acting as -inf/+inf.
///
/// `Bottom` is "no value reaches here yet"; `top()` is the unknown
/// full range. Arithmetic saturates at the infinities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interval {
    /// Unreachable / not yet computed.
    Bottom,
    /// All integers in `lo..=hi` (inclusive; sentinels are infinities).
    Range {
        /// Lower bound (`i64::MIN` = unbounded below).
        lo: i64,
        /// Upper bound (`i64::MAX` = unbounded above).
        hi: i64,
    },
}

impl Interval {
    /// The full unknown range.
    pub fn top() -> Interval {
        Interval::Range {
            lo: i64::MIN,
            hi: i64::MAX,
        }
    }

    /// A single known constant.
    pub fn constant(c: i64) -> Interval {
        Interval::Range { lo: c, hi: c }
    }

    /// A normalized range (an inverted pair collapses to `Bottom`).
    pub fn range(lo: i64, hi: i64) -> Interval {
        if lo > hi {
            Interval::Bottom
        } else {
            Interval::Range { lo, hi }
        }
    }

    /// The constant value, if the range is a singleton.
    pub fn as_constant(&self) -> Option<i64> {
        match *self {
            Interval::Range { lo, hi } if lo == hi => Some(lo),
            _ => None,
        }
    }

    /// True when both ends are finite.
    pub fn is_finite(&self) -> bool {
        matches!(*self, Interval::Range { lo, hi } if lo != i64::MIN && hi != i64::MAX)
    }

    fn binary(self, other: Interval, f: impl Fn(i64, i64, i64, i64) -> Interval) -> Interval {
        match (self, other) {
            (Interval::Range { lo: a, hi: b }, Interval::Range { lo: c, hi: d }) => f(a, b, c, d),
            _ => Interval::Bottom,
        }
    }

    /// Abstract comparison under a predicate name (`eq`, `ne`, `lt`,
    /// `le`, `gt`, `ge`), yielding a boolean interval over `{0, 1}`.
    pub fn compare(self, predicate: &str, other: Interval) -> Interval {
        self.binary(other, |a, b, c, d| {
            let (always, never) = match predicate {
                "lt" => (b < c, a >= d),
                "le" => (b <= c, a > d),
                "gt" => (a > d, b <= c),
                "ge" => (a >= d, b < c),
                "eq" => (a == b && c == d && a == c, b < c || a > d),
                "ne" => (b < c || a > d, a == b && c == d && a == c),
                _ => (false, false),
            };
            if always {
                Interval::constant(1)
            } else if never {
                Interval::constant(0)
            } else {
                Interval::range(0, 1)
            }
        })
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Abstract addition.
    fn add(self, other: Interval) -> Interval {
        self.binary(other, |a, b, c, d| Interval::Range {
            lo: inf_add_lo(a, c),
            hi: inf_add_hi(b, d),
        })
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;

    /// Abstract subtraction.
    fn sub(self, other: Interval) -> Interval {
        self.binary(other, |a, b, c, d| Interval::Range {
            lo: inf_add_lo(a, inf_neg(d)),
            hi: inf_add_hi(b, inf_neg(c)),
        })
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;

    /// Abstract multiplication (conservative: any infinite end ⇒ top).
    fn mul(self, other: Interval) -> Interval {
        self.binary(other, |a, b, c, d| {
            if a == i64::MIN || b == i64::MAX || c == i64::MIN || d == i64::MAX {
                Interval::top()
            } else {
                let products = [
                    a as i128 * c as i128,
                    a as i128 * d as i128,
                    b as i128 * c as i128,
                    b as i128 * d as i128,
                ];
                let lo = products.iter().min().copied().unwrap_or(0);
                let hi = products.iter().max().copied().unwrap_or(0);
                Interval::Range {
                    lo: clamp_i128(lo),
                    hi: clamp_i128(hi),
                }
            }
        })
    }
}

impl Lattice for Interval {
    fn bottom() -> Interval {
        Interval::Bottom
    }

    fn join(&self, other: &Interval) -> Interval {
        match (*self, *other) {
            (Interval::Bottom, x) | (x, Interval::Bottom) => x,
            (Interval::Range { lo: a, hi: b }, Interval::Range { lo: c, hi: d }) => {
                Interval::Range {
                    lo: a.min(c),
                    hi: b.max(d),
                }
            }
        }
    }
}

fn clamp_i128(x: i128) -> i64 {
    x.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

fn inf_neg(x: i64) -> i64 {
    match x {
        i64::MIN => i64::MAX,
        i64::MAX => i64::MIN,
        v => -v,
    }
}

fn inf_add_lo(a: i64, b: i64) -> i64 {
    if a == i64::MIN || b == i64::MIN {
        i64::MIN
    } else {
        a.saturating_add(b)
    }
}

fn inf_add_hi(a: i64, b: i64) -> i64 {
    if a == i64::MAX || b == i64::MAX {
        i64::MAX
    } else {
        a.saturating_add(b)
    }
}

/// How one SSA value's fact is computed from others. Precomputed once;
/// the operands referenced here become the value's flow-graph edges.
#[derive(Debug, Clone)]
enum Rule {
    /// Statically unknown.
    Top,
    /// `arith.constant` with an integer payload.
    Const(i64),
    /// Integer binary arithmetic.
    Add(ValueId, ValueId),
    /// Integer subtraction.
    Sub(ValueId, ValueId),
    /// Integer multiplication.
    Mul(ValueId, ValueId),
    /// `arith.cmpi` under a predicate.
    Cmp(String, ValueId, ValueId),
    /// `arith.select cond, a, b`.
    Select(ValueId, ValueId, ValueId),
    /// Value-preserving cast.
    Copy(ValueId),
    /// Join of several sources (loop results, iter-args, call
    /// boundaries under the closed-world assumption).
    Join(Vec<ValueId>),
    /// `scf.for` induction variable: `[lo(lb), hi(ub) - 1]`.
    Induction { lb: ValueId, ub: ValueId },
}

impl Rule {
    fn sources(&self) -> Vec<ValueId> {
        match self {
            Rule::Top | Rule::Const(_) => Vec::new(),
            Rule::Add(a, b) | Rule::Sub(a, b) | Rule::Mul(a, b) | Rule::Cmp(_, a, b) => {
                vec![*a, *b]
            }
            Rule::Select(c, a, b) => vec![*c, *a, *b],
            Rule::Copy(a) => vec![*a],
            Rule::Join(vs) => vs.clone(),
            Rule::Induction { lb, ub } => vec![*lb, *ub],
        }
    }
}

/// The interval fixpoint over a whole module.
#[derive(Debug, Clone)]
pub struct IntervalFacts {
    states: Vec<Interval>,
    /// False when the step budget ran out; facts are then an
    /// under-approximation and must not justify a deny.
    pub converged: bool,
}

impl IntervalFacts {
    /// The proven interval for `value`.
    pub fn of(&self, value: ValueId) -> Interval {
        self.states
            .get(value.index())
            .copied()
            .unwrap_or_else(Interval::top)
    }
}

fn symbol_attr<'m>(operation: &'m Operation, name: &str) -> Option<&'m str> {
    match operation.attr(name)? {
        everest_ir::attr::Attribute::Str(s) => Some(s),
        everest_ir::attr::Attribute::SymbolRef(s) => Some(s),
        _ => None,
    }
}

/// The terminator of an op's first region's entry... for `scf.for` the
/// `scf.yield`, for `func.func` every `func.return`.
fn region_terminators<'m>(module: &'m Module, op: OpId, name: &str) -> Vec<&'m Operation> {
    let mut found = Vec::new();
    for nested in module.walk_nested(op) {
        if nested == op {
            continue;
        }
        if let Some(inner) = module.op(nested) {
            if inner.name == name {
                found.push(inner);
            }
        }
    }
    found
}

/// Direct `scf.yield`s of a `scf.for` body (not those of nested loops).
fn direct_yields<'m>(module: &'m Module, for_op: &Operation) -> Vec<&'m Operation> {
    let mut found = Vec::new();
    for &region in &for_op.regions {
        for &block in &module.region(region).blocks {
            for &inner in &module.block(block).ops {
                if let Some(operation) = module.op(inner) {
                    if operation.name == "scf.yield" {
                        found.push(operation);
                    }
                }
            }
        }
    }
    found
}

fn build_rules(module: &Module) -> Vec<Rule> {
    let mut rules = vec![Rule::Top; module.num_values()];
    for op_id in module.walk_ops() {
        let Some(operation) = module.op(op_id) else {
            continue;
        };
        match operation.name.as_str() {
            "arith.constant" => {
                if let (Some(c), Some(&result)) =
                    (operation.int_attr("value"), operation.results.first())
                {
                    rules[result.index()] = Rule::Const(c);
                }
            }
            "arith.addi" => set_binary(&mut rules, operation, Rule::Add),
            "arith.subi" => set_binary(&mut rules, operation, Rule::Sub),
            "arith.muli" => set_binary(&mut rules, operation, Rule::Mul),
            "arith.cmpi" => {
                if let (Some(&result), [a, b, ..]) =
                    (operation.results.first(), operation.operands.as_slice())
                {
                    let pred = operation.str_attr("predicate").unwrap_or("eq").to_string();
                    rules[result.index()] = Rule::Cmp(pred, *a, *b);
                }
            }
            "arith.select" => {
                if let (Some(&result), [c, a, b, ..]) =
                    (operation.results.first(), operation.operands.as_slice())
                {
                    rules[result.index()] = Rule::Select(*c, *a, *b);
                }
            }
            "arith.index_cast" => {
                if let (Some(&result), Some(&a)) =
                    (operation.results.first(), operation.operands.first())
                {
                    rules[result.index()] = Rule::Copy(a);
                }
            }
            "scf.for" => {
                let yields = direct_yields(module, operation);
                let inits = &operation.operands[3.min(operation.operands.len())..];
                // Loop results: join of the initial value and every yield.
                for (index, &result) in operation.results.iter().enumerate() {
                    let mut sources = Vec::new();
                    if let Some(&init) = inits.get(index) {
                        sources.push(init);
                    }
                    for y in &yields {
                        if let Some(&v) = y.operands.get(index) {
                            sources.push(v);
                        }
                    }
                    rules[result.index()] = Rule::Join(sources);
                }
                // Body block args: induction variable, then iter-args.
                if let Some(&region) = operation.regions.first() {
                    if let Some(&entry) = module.region(region).blocks.first() {
                        let args = module.block(entry).args.clone();
                        if let (Some(&iv), [lb, ub, ..]) =
                            (args.first(), operation.operands.as_slice())
                        {
                            rules[iv.index()] = Rule::Induction { lb: *lb, ub: *ub };
                        }
                        for (index, &arg) in args.iter().enumerate().skip(1) {
                            let mut sources = Vec::new();
                            if let Some(&init) = inits.get(index - 1) {
                                sources.push(init);
                            }
                            for y in &yields {
                                if let Some(&v) = y.operands.get(index - 1) {
                                    sources.push(v);
                                }
                            }
                            rules[arg.index()] = Rule::Join(sources);
                        }
                    }
                }
            }
            "func.func" => {
                // Closed world: a function's entry args join the
                // operands of every call site naming it. Uncalled
                // functions keep Top (callable from outside).
                let Some(symbol) = operation.str_attr("sym_name") else {
                    continue;
                };
                let mut call_operands: Vec<Vec<ValueId>> = Vec::new();
                for other in module.walk_ops() {
                    if let Some(call) = module.op(other) {
                        if call.name == "func.call" && symbol_attr(call, "callee") == Some(symbol) {
                            call_operands.push(call.operands.clone());
                        }
                    }
                }
                if call_operands.is_empty() {
                    continue;
                }
                if let Some(&region) = operation.regions.first() {
                    if let Some(&entry) = module.region(region).blocks.first() {
                        for (index, &arg) in module.block(entry).args.iter().enumerate() {
                            let sources: Vec<ValueId> = call_operands
                                .iter()
                                .filter_map(|ops| ops.get(index).copied())
                                .collect();
                            if sources.len() == call_operands.len() {
                                rules[arg.index()] = Rule::Join(sources);
                            }
                        }
                    }
                }
            }
            "func.call" => {
                // Call results join the callee's return operands.
                let Some(callee) = symbol_attr(operation, "callee") else {
                    continue;
                };
                let Some(func) = module.lookup_symbol(callee) else {
                    continue;
                };
                let returns = region_terminators(module, func, "func.return");
                if returns.is_empty() {
                    continue;
                }
                for (index, &result) in operation.results.iter().enumerate() {
                    let sources: Vec<ValueId> = returns
                        .iter()
                        .filter_map(|r| r.operands.get(index).copied())
                        .collect();
                    if sources.len() == returns.len() {
                        rules[result.index()] = Rule::Join(sources);
                    }
                }
            }
            _ => {}
        }
    }
    rules
}

fn set_binary(rules: &mut [Rule], operation: &Operation, make: fn(ValueId, ValueId) -> Rule) {
    if let (Some(&result), [a, b, ..]) = (operation.results.first(), operation.operands.as_slice())
    {
        rules[result.index()] = make(*a, *b);
    }
}

fn eval(rule: &Rule, states: &[Interval]) -> Interval {
    let get = |v: &ValueId| states[v.index()];
    match rule {
        Rule::Top => Interval::top(),
        Rule::Const(c) => Interval::constant(*c),
        Rule::Add(a, b) => get(a) + get(b),
        Rule::Sub(a, b) => get(a) - get(b),
        Rule::Mul(a, b) => get(a) * get(b),
        Rule::Cmp(pred, a, b) => get(a).compare(pred, get(b)),
        Rule::Select(c, a, b) => match get(c).as_constant() {
            Some(0) => get(b),
            Some(1) => get(a),
            _ => get(a).join(&get(b)),
        },
        Rule::Copy(a) => get(a),
        Rule::Join(sources) => sources
            .iter()
            .fold(Interval::Bottom, |acc, v| acc.join(&get(v))),
        Rule::Induction { lb, ub } => match (get(lb), get(ub)) {
            (Interval::Range { lo, .. }, Interval::Range { hi, .. }) => {
                // The induction variable ranges over [lb, ub): one below
                // the upper bound, unless that bound is infinite.
                let hi = if hi == i64::MAX { hi } else { hi - 1 };
                Interval::range(lo, hi)
            }
            _ => Interval::Bottom,
        },
    }
}

/// Runs the interval fixpoint over every SSA value of `module`.
///
/// Shared by the [`IntervalAnalysis`] lint and the worst-case-latency
/// analysis in [`crate::latency`] (which needs loop trip counts).
pub fn compute(module: &Module) -> IntervalFacts {
    let rules = build_rules(module);
    let n = rules.len();
    let mut graph = FlowGraph::new(n);
    let mut edges = 0usize;
    for (index, rule) in rules.iter().enumerate() {
        for source in rule.sources() {
            graph.add_edge(source.index(), index);
            edges += 1;
        }
    }
    let mut bumps = vec![0u32; n];
    let budget = 64 * (n + edges) + 64;
    let result = solve(
        &graph,
        Direction::Forward,
        WorklistOrder::Fifo,
        vec![Interval::Bottom; n],
        |node, states: &[Interval]| {
            let mut fact = eval(&rules[node], states);
            let current = states[node];
            if fact.join(&current) != current {
                bumps[node] += 1;
                if bumps[node] > WIDEN_AFTER {
                    // Widen whichever bound is still moving to infinity
                    // so loop-carried arithmetic terminates.
                    if let (
                        Interval::Range {
                            lo: new_lo,
                            hi: new_hi,
                        },
                        Interval::Range {
                            lo: cur_lo,
                            hi: cur_hi,
                        },
                    ) = (&mut fact, current)
                    {
                        if *new_lo < cur_lo {
                            *new_lo = i64::MIN;
                        }
                        if *new_hi > cur_hi {
                            *new_hi = i64::MAX;
                        }
                    }
                }
            }
            fact
        },
        budget,
    );
    IntervalFacts {
        states: result.states,
        converged: result.converged,
    }
}

/// Interval/constant-propagation lint. See the module docs.
#[derive(Debug, Default)]
pub struct IntervalAnalysis;

impl Lint for IntervalAnalysis {
    fn name(&self) -> &'static str {
        "interval"
    }

    fn lints(&self) -> &'static [LintInfo] {
        INTERVAL_LINTS
    }

    fn run(&self, _ctx: &Context, module: &Module, out: &mut Collector<'_>) {
        let facts = compute(module);
        for op_id in module.walk_ops() {
            let Some(operation) = module.op(op_id) else {
                continue;
            };
            match operation.name.as_str() {
                // Deny only when the facts are a sound
                // over-approximation (the solver converged).
                "memref.load" | "memref.store" if facts.converged => {
                    check_access(module, &facts, op_id, operation, out);
                }
                "arith.select" => {
                    if let Some(&cond) = operation.operands.first() {
                        match facts.of(cond).as_constant() {
                            Some(0) => out.emit(
                                DEAD,
                                op_id,
                                "select condition is statically always false; the true arm is dead"
                                    .to_string(),
                            ),
                            Some(1) => out.emit(
                                DEAD,
                                op_id,
                                "select condition is statically always true; the false arm is dead"
                                    .to_string(),
                            ),
                            _ => {}
                        }
                    }
                }
                "scf.for" => {
                    if let [lb, ub, ..] = operation.operands.as_slice() {
                        if let (Interval::Range { lo, .. }, Interval::Range { hi, .. }) =
                            (facts.of(*lb), facts.of(*ub))
                        {
                            if lo != i64::MIN && hi != i64::MAX && hi <= lo {
                                out.emit(
                                    DEAD,
                                    op_id,
                                    format!(
                                        "loop provably executes zero iterations \
                                         (bounds [{lo}, {hi}))"
                                    ),
                                );
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

fn check_access(
    module: &Module,
    facts: &IntervalFacts,
    op_id: OpId,
    operation: &Operation,
    out: &mut Collector<'_>,
) {
    let (base_pos, first_index) = if operation.name == "memref.load" {
        (0, 1)
    } else {
        (1, 2)
    };
    let Some(&base) = operation.operands.get(base_pos) else {
        return;
    };
    let Type::MemRef { shape, .. } = module.value_type(base) else {
        return;
    };
    let shape = shape.clone();
    for (dim, &index_value) in operation.operands.iter().skip(first_index).enumerate() {
        // Dynamic extents (`None`) cannot be checked statically.
        let Some(extent) = shape.get(dim).copied().flatten() else {
            continue;
        };
        // Direct constants belong to the syntactic lint.
        if let ValueDef::OpResult { op, .. } = module.value(index_value).def {
            if module.op(op).is_some_and(|o| o.name == "arith.constant") {
                continue;
            }
        }
        if let Interval::Range { lo, hi } = facts.of(index_value) {
            if hi < 0 || (lo != i64::MIN && lo >= 0 && lo as u64 >= extent) {
                out.emit(
                    OOB,
                    op_id,
                    format!(
                        "index range [{lo}, {hi}] for dimension {dim} is provably outside \
                         extent {extent}"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::dialects::core::{build_for, build_func, const_index};
    use everest_ir::types::MemorySpace;

    use crate::lint::Analyzer;

    fn analyzer() -> Analyzer {
        Analyzer::new().with_lint(Box::new(IntervalAnalysis))
    }

    #[test]
    fn interval_arithmetic_is_sane() {
        let a = Interval::range(1, 3);
        let b = Interval::range(10, 20);
        assert_eq!(a + b, Interval::range(11, 23));
        assert_eq!(b - a, Interval::range(7, 19));
        assert_eq!(a * b, Interval::range(10, 60));
        assert_eq!(a.compare("lt", b), Interval::constant(1));
        assert_eq!(b.compare("lt", a), Interval::constant(0));
        assert_eq!(a.compare("lt", a), Interval::range(0, 1));
        assert_eq!(Interval::Bottom.join(&a), a);
    }

    /// An induction variable shifted past the extent: `for i in 0..8 {
    /// load buf[i + 8] }` on a memref of extent 8 is proven OOB even
    /// though no single index is a literal constant.
    #[test]
    fn shifted_induction_variable_is_proven_out_of_bounds() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let buf = m
            .build_op(
                "memref.alloc",
                vec![],
                vec![Type::memref(&[8], Type::F64, MemorySpace::Host)],
            )
            .append_to(top);
        let buf = everest_ir::module::single_result(&m, buf);
        let lb = const_index(&mut m, top, 0);
        let ub = const_index(&mut m, top, 8);
        let step = const_index(&mut m, top, 1);
        let (_for_op, body) = build_for(&mut m, top, lb, ub, step);
        let iv = m.block(body).args[0];
        let shift = const_index(&mut m, body, 8);
        let idx = m
            .build_op("arith.addi", vec![iv, shift], vec![Type::Index])
            .append_to(body);
        let idx = everest_ir::module::single_result(&m, idx);
        m.build_op("memref.load", vec![buf, idx], vec![Type::F64])
            .append_to(body);
        let report = analyzer().run(&ctx, &m);
        assert_eq!(report.by_lint(OOB).len(), 1);
        assert!(report.has_denials());
    }

    /// The same loop without the shift stays clean: [0, 7] fits.
    #[test]
    fn in_bounds_induction_variable_is_clean() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let buf = m
            .build_op(
                "memref.alloc",
                vec![],
                vec![Type::memref(&[8], Type::F64, MemorySpace::Host)],
            )
            .append_to(top);
        let buf = everest_ir::module::single_result(&m, buf);
        let lb = const_index(&mut m, top, 0);
        let ub = const_index(&mut m, top, 8);
        let step = const_index(&mut m, top, 1);
        let (_for_op, body) = build_for(&mut m, top, lb, ub, step);
        let iv = m.block(body).args[0];
        m.build_op("memref.load", vec![buf, iv], vec![Type::F64])
            .append_to(body);
        let report = analyzer().run(&ctx, &m);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn statically_decided_select_is_a_dead_branch() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let a = const_index(&mut m, top, 3);
        let b = const_index(&mut m, top, 7);
        let cond = m
            .build_op("arith.cmpi", vec![a, b], vec![Type::Int(1)])
            .attr("predicate", "lt")
            .append_to(top);
        let cond = everest_ir::module::single_result(&m, cond);
        m.build_op("arith.select", vec![cond, a, b], vec![Type::Index])
            .append_to(top);
        let report = analyzer().run(&ctx, &m);
        assert_eq!(report.by_lint(DEAD).len(), 1);
        assert!(!report.has_denials());
    }

    #[test]
    fn empty_loop_is_a_dead_branch() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let lb = const_index(&mut m, top, 8);
        let ub = const_index(&mut m, top, 8);
        let step = const_index(&mut m, top, 1);
        build_for(&mut m, top, lb, ub, step);
        let report = analyzer().run(&ctx, &m);
        assert_eq!(report.by_lint(DEAD).len(), 1);
    }

    /// Interprocedural: a constant flows through a call boundary into
    /// an index computation that is proven out of bounds.
    #[test]
    fn constant_through_call_boundary_is_tracked() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        // fn offset(x) { return x } — identity, closed world.
        let (_f, fbody) = build_func(&mut m, top, "offset", &[Type::Index], &[Type::Index]);
        let arg = m.block(fbody).args[0];
        m.build_op("func.return", vec![arg], vec![])
            .append_to(fbody);
        // Caller: load buf[offset(12)] on extent 8.
        let buf = m
            .build_op(
                "memref.alloc",
                vec![],
                vec![Type::memref(&[8], Type::F64, MemorySpace::Host)],
            )
            .append_to(top);
        let buf = everest_ir::module::single_result(&m, buf);
        let big = const_index(&mut m, top, 12);
        let call = m
            .build_op("func.call", vec![big], vec![Type::Index])
            .attr(
                "callee",
                everest_ir::attr::Attribute::SymbolRef("offset".into()),
            )
            .append_to(top);
        let idx = everest_ir::module::single_result(&m, call);
        m.build_op("memref.load", vec![buf, idx], vec![Type::F64])
            .append_to(top);
        let report = analyzer().run(&ctx, &m);
        assert_eq!(report.by_lint(OOB).len(), 1, "{}", report.to_text());
    }
}
