//! Diagnostics: structured findings with configurable severity.

use std::collections::BTreeMap;
use std::fmt;

use everest_ir::location::OpPath;

/// How a lint finding is treated.
///
/// Mirrors `rustc`'s lint levels: `Allow` suppresses the finding
/// entirely, `Warn` records it without failing the analysis, `Deny`
/// records it and makes [`AnalysisReport::has_denials`] true (which the
/// analysis pass can turn into a hard pipeline error).
///
/// [`AnalysisReport::has_denials`]: crate::report::AnalysisReport::has_denials
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppress the finding.
    Allow,
    /// Record the finding; the module still passes analysis.
    Warn,
    /// Record the finding and fail the analysis.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Allow => write!(f, "allow"),
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "allow" => Ok(Severity::Allow),
            "warn" => Ok(Severity::Warn),
            "deny" => Ok(Severity::Deny),
            other => Err(format!("unknown severity '{other}'")),
        }
    }
}

/// One finding produced by a lint.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Lint id (e.g. `"memref-use-after-free"`).
    pub lint: String,
    /// Severity after applying configured levels.
    pub severity: Severity,
    /// Fully qualified name of the op the finding is anchored to, when
    /// it concerns a specific op.
    pub op: Option<String>,
    /// Structural location of that op, when it is attached to the
    /// module (shares the representation verification errors carry).
    pub path: Option<OpPath>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.lint)?;
        if let Some(op) = &self.op {
            write!(f, " '{op}'")?;
        }
        if let Some(path) = &self.path {
            write!(f, " at {path}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Per-lint severity overrides, like `-A`/`-W`/`-D` flags on `rustc`.
///
/// Lints declare a default severity; a `LintLevels` maps lint ids to
/// replacement severities. Unmentioned lints keep their default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintLevels {
    overrides: BTreeMap<String, Severity>,
}

impl LintLevels {
    /// No overrides: every lint runs at its default severity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level for one lint id.
    pub fn set(&mut self, lint: &str, severity: Severity) -> &mut Self {
        self.overrides.insert(lint.to_string(), severity);
        self
    }

    /// Builder-style [`LintLevels::set`] to [`Severity::Allow`].
    #[must_use]
    pub fn allow(mut self, lint: &str) -> Self {
        self.set(lint, Severity::Allow);
        self
    }

    /// Builder-style [`LintLevels::set`] to [`Severity::Warn`].
    #[must_use]
    pub fn warn(mut self, lint: &str) -> Self {
        self.set(lint, Severity::Warn);
        self
    }

    /// Builder-style [`LintLevels::set`] to [`Severity::Deny`].
    #[must_use]
    pub fn deny(mut self, lint: &str) -> Self {
        self.set(lint, Severity::Deny);
        self
    }

    /// The effective severity of `lint` given its default.
    pub fn effective(&self, lint: &str, default: Severity) -> Severity {
        self.overrides.get(lint).copied().unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_allow_warn_deny() {
        assert!(Severity::Allow < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
    }

    #[test]
    fn severity_roundtrips_through_strings() {
        for s in [Severity::Allow, Severity::Warn, Severity::Deny] {
            assert_eq!(s.to_string().parse::<Severity>().unwrap(), s);
        }
        assert!("fatal".parse::<Severity>().is_err());
    }

    #[test]
    fn levels_override_defaults() {
        let levels = LintLevels::new().allow("noisy").deny("serious");
        assert_eq!(levels.effective("noisy", Severity::Warn), Severity::Allow);
        assert_eq!(levels.effective("serious", Severity::Warn), Severity::Deny);
        assert_eq!(levels.effective("other", Severity::Warn), Severity::Warn);
    }

    #[test]
    fn diagnostic_display_lists_severity_lint_and_message() {
        let d = Diagnostic {
            lint: "memref-leak".into(),
            severity: Severity::Warn,
            op: Some("memref.alloc".into()),
            path: None,
            message: "buffer is never deallocated".into(),
        };
        let text = d.to_string();
        assert!(text.starts_with("warn[memref-leak]"));
        assert!(text.contains("memref.alloc"));
        assert!(text.contains("never deallocated"));
    }
}
