//! The lint framework: the [`Lint`] trait, the [`Collector`] findings
//! sink, and the [`Analyzer`] driver.
//!
//! Unlike [`verify_module`](everest_ir::verify::verify_module), which
//! stops at the first violation, an analyzer *collects*: every lint
//! runs to completion over the whole module and the report holds all
//! findings, each tagged with the op's structural path.

use std::collections::BTreeMap;

use everest_ir::ids::OpId;
use everest_ir::location::OpPath;
use everest_ir::module::Module;
use everest_ir::registry::Context;

use crate::diagnostics::{Diagnostic, LintLevels, Severity};
use crate::report::AnalysisReport;

/// Static description of one lint id a [`Lint`] can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintInfo {
    /// Stable kebab-case id used in reports and level configuration.
    pub id: &'static str,
    /// One-line description for catalogues and docs.
    pub description: &'static str,
    /// Severity applied when no override is configured.
    pub default_severity: Severity,
}

/// A non-mutating analysis over a module.
///
/// One `Lint` implementation may emit several related lint ids (e.g.
/// the memref lifetime analysis emits use-after-free, double-free,
/// leak and out-of-bounds findings from a single walk); it declares
/// them all via [`Lint::lints`] so the analyzer can catalogue them and
/// resolve severities.
pub trait Lint {
    /// Name of the analysis (pass-style, for debugging/catalogues).
    fn name(&self) -> &'static str;

    /// The lint ids this analysis can emit.
    fn lints(&self) -> &'static [LintInfo];

    /// Runs the analysis, emitting findings into `out`.
    fn run(&self, ctx: &Context, module: &Module, out: &mut Collector<'_>);
}

/// Findings sink handed to lints.
///
/// Resolves each emission's severity (default + configured override),
/// drops [`Severity::Allow`] findings, and attaches the op's
/// structural path — the same [`OpPath`] verification errors carry.
#[derive(Debug)]
pub struct Collector<'a> {
    defaults: &'a BTreeMap<&'static str, Severity>,
    levels: &'a LintLevels,
    module: &'a Module,
    diagnostics: Vec<Diagnostic>,
}

impl<'a> Collector<'a> {
    fn new(
        defaults: &'a BTreeMap<&'static str, Severity>,
        levels: &'a LintLevels,
        module: &'a Module,
    ) -> Self {
        Collector {
            defaults,
            levels,
            module,
            diagnostics: Vec::new(),
        }
    }

    fn severity_of(&self, lint: &str) -> Severity {
        let default = self.defaults.get(lint).copied().unwrap_or(Severity::Warn);
        self.levels.effective(lint, default)
    }

    /// Emits a finding anchored to a specific op.
    pub fn emit(&mut self, lint: &str, op: OpId, message: impl Into<String>) {
        let severity = self.severity_of(lint);
        if severity == Severity::Allow {
            return;
        }
        let name = self.module.op(op).map(|o| o.name.to_string());
        self.diagnostics.push(Diagnostic {
            lint: lint.to_string(),
            severity,
            op: name,
            path: OpPath::of(self.module, op),
            message: message.into(),
        });
    }

    /// Emits a module-level finding not tied to one op.
    pub fn emit_module(&mut self, lint: &str, message: impl Into<String>) {
        let severity = self.severity_of(lint);
        if severity == Severity::Allow {
            return;
        }
        self.diagnostics.push(Diagnostic {
            lint: lint.to_string(),
            severity,
            op: None,
            path: None,
            message: message.into(),
        });
    }

    /// Number of findings collected so far (used by lints to cap noise).
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// `true` when nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs a set of lints over modules and aggregates their findings.
pub struct Analyzer {
    lints: Vec<Box<dyn Lint + Send + Sync>>,
    levels: LintLevels,
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field(
                "lints",
                &self.lints.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .field("levels", &self.levels)
            .finish()
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::with_default_lints()
    }
}

impl Analyzer {
    /// An analyzer with no lints registered.
    pub fn new() -> Self {
        Analyzer {
            lints: Vec::new(),
            levels: LintLevels::new(),
        }
    }

    /// An analyzer with the full EVEREST lint set: type checking,
    /// memory-space checking, memref lifetimes, dataflow structure,
    /// HLS pre-synthesis lints, and the fixpoint-powered analyses
    /// (interval propagation, memory-space escape, worst-case latency).
    pub fn with_default_lints() -> Self {
        Analyzer::new()
            .with_lint(Box::new(crate::typecheck::TypeCheck))
            .with_lint(Box::new(crate::typecheck::MemorySpaceCheck))
            .with_lint(Box::new(crate::lifetime::MemrefLifetime))
            .with_lint(Box::new(crate::dataflow::DfgStructure))
            .with_lint(Box::new(crate::hls::HlsPreSynthesis))
            .with_lint(Box::new(crate::interval::IntervalAnalysis))
            .with_lint(Box::new(crate::escape::MemorySpaceEscape))
            .with_lint(Box::new(crate::latency::WorstCaseLatency))
    }

    /// Adds a lint. Lints are `Send + Sync` (they take `&self` and all
    /// built-ins are stateless) so an [`AnalysisPass`](crate::pass::AnalysisPass)
    /// can sit in a thread-shared pipeline.
    #[must_use]
    pub fn with_lint(mut self, lint: Box<dyn Lint + Send + Sync>) -> Self {
        self.lints.push(lint);
        self
    }

    /// Replaces the configured severity overrides.
    #[must_use]
    pub fn with_levels(mut self, levels: LintLevels) -> Self {
        self.levels = levels;
        self
    }

    /// Sets the level of one lint id.
    pub fn set_level(&mut self, lint: &str, severity: Severity) {
        self.levels.set(lint, severity);
    }

    /// The configured severity overrides.
    pub fn levels(&self) -> &LintLevels {
        &self.levels
    }

    /// Every lint id the registered lints can emit, with metadata.
    pub fn catalogue(&self) -> Vec<LintInfo> {
        self.lints.iter().flat_map(|l| l.lints()).copied().collect()
    }

    /// Runs all lints over the module and collects every finding.
    ///
    /// Never fails: malformed modules simply produce findings (or are
    /// skipped by individual lints); use the verifier for hard
    /// structural errors.
    pub fn run(&self, ctx: &Context, module: &Module) -> AnalysisReport {
        let defaults: BTreeMap<&'static str, Severity> = self
            .catalogue()
            .into_iter()
            .map(|info| (info.id, info.default_severity))
            .collect();
        let mut report = AnalysisReport::new();
        for lint in &self.lints {
            let mut out = Collector::new(&defaults, &self.levels, module);
            lint.run(ctx, module, &mut out);
            report.diagnostics.extend(out.diagnostics);
        }
        report.normalize();
        report
    }

    /// Runs the ConDRust graph lints over an extracted dataflow graph,
    /// honouring the same severity overrides as module lints.
    pub fn run_graph(&self, graph: &everest_condrust::DataflowGraph) -> AnalysisReport {
        let mut report = crate::dataflow::analyze_condrust_graph(graph, &self.levels);
        report.normalize();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::dialects::core;

    struct CountOps;

    const COUNT_LINTS: &[LintInfo] = &[LintInfo {
        id: "test-count",
        description: "flags every op",
        default_severity: Severity::Warn,
    }];

    impl Lint for CountOps {
        fn name(&self) -> &'static str {
            "count-ops"
        }

        fn lints(&self) -> &'static [LintInfo] {
            COUNT_LINTS
        }

        fn run(&self, _ctx: &Context, module: &Module, out: &mut Collector<'_>) {
            for op in module.walk_ops() {
                out.emit("test-count", op, "an op");
            }
        }
    }

    #[test]
    fn collector_gathers_every_finding_with_paths() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let b = core::const_f64(&mut m, top, 2.0);
        core::binary(&mut m, top, "arith.addf", a, b);
        let analyzer = Analyzer::new().with_lint(Box::new(CountOps));
        let report = analyzer.run(&ctx, &m);
        assert_eq!(report.diagnostics.len(), 3);
        for d in &report.diagnostics {
            assert!(d.path.is_some(), "module ops have paths");
        }
    }

    #[test]
    fn allow_level_suppresses_findings() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        core::const_f64(&mut m, top, 1.0);
        let analyzer = Analyzer::new()
            .with_lint(Box::new(CountOps))
            .with_levels(LintLevels::new().allow("test-count"));
        assert!(analyzer.run(&ctx, &m).is_clean());
    }

    #[test]
    fn deny_override_escalates() {
        let ctx = Context::with_all_dialects();
        let mut m = Module::new();
        let top = m.top_block();
        core::const_f64(&mut m, top, 1.0);
        let analyzer = Analyzer::new()
            .with_lint(Box::new(CountOps))
            .with_levels(LintLevels::new().deny("test-count"));
        let report = analyzer.run(&ctx, &m);
        assert!(report.has_denials());
    }

    #[test]
    fn default_catalogue_has_the_documented_lint_set() {
        let analyzer = Analyzer::with_default_lints();
        let ids: Vec<&str> = analyzer.catalogue().iter().map(|i| i.id).collect();
        for id in [
            "type-mismatch",
            "memory-space",
            "memref-use-after-free",
            "memref-double-free",
            "memref-leak",
            "memref-out-of-bounds",
            "dfg-multiple-writers",
            "dfg-unbuffered-cycle",
            "dfg-dangling-port",
            "hls-loop-invariant",
            "hls-unpipelinable",
            "interval-out-of-bounds",
            "interval-dead-branch",
            "dfg-channel-capacity",
            "memory-space-escape",
            "latency-deadline",
            "latency-unbounded",
        ] {
            assert!(ids.contains(&id), "missing lint id {id}");
        }
    }
}
