//! Memref lifetime analysis: use-after-dealloc, double-dealloc, leaked
//! allocations and statically out-of-bounds constant accesses.

use std::collections::HashSet;

use everest_ir::ids::ValueId;
use everest_ir::module::{Module, Operation, ValueDef};
use everest_ir::registry::Context;
use everest_ir::types::Type;

use crate::diagnostics::Severity;
use crate::lint::{Collector, Lint, LintInfo};

/// Lifetime analysis over `memref` buffers.
///
/// Walks the module in program order tracking each buffer's state
/// (live, freed), checks every constant-indexed access against the
/// static shape, and reports allocations that neither escape nor get
/// deallocated.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemrefLifetime;

const LIFETIME_LINTS: &[LintInfo] = &[
    LintInfo {
        id: "memref-use-after-free",
        description: "buffer used after memref.dealloc",
        default_severity: Severity::Deny,
    },
    LintInfo {
        id: "memref-double-free",
        description: "buffer deallocated twice",
        default_severity: Severity::Deny,
    },
    LintInfo {
        id: "memref-leak",
        description: "allocation neither deallocated nor escaping",
        default_severity: Severity::Warn,
    },
    LintInfo {
        id: "memref-out-of-bounds",
        description: "constant index provably outside the static shape",
        default_severity: Severity::Deny,
    },
];

/// Ops whose use of a buffer hands it to another owner, so the
/// allocation is not this scope's to free.
const ESCAPE_OPS: &[&str] = &[
    "func.return",
    "olympus.dma",
    "scf.yield",
    "dfg.yield",
    "olympus.yield",
    "func.call",
    "olympus.kernel",
];

impl Lint for MemrefLifetime {
    fn name(&self) -> &'static str {
        "memref-lifetime"
    }

    fn lints(&self) -> &'static [LintInfo] {
        LIFETIME_LINTS
    }

    fn run(&self, _ctx: &Context, module: &Module, out: &mut Collector<'_>) {
        check_free_order(module, out);
        check_leaks(module, out);
        check_bounds(module, out);
    }
}

/// Use-after-free and double-free, over the module's program order.
fn check_free_order(module: &Module, out: &mut Collector<'_>) {
    let mut freed: HashSet<ValueId> = HashSet::new();
    for op in module.walk_ops() {
        let Some(operation) = module.op(op) else {
            continue;
        };
        if operation.name == "memref.dealloc" {
            let Some(&buf) = operation.operands.first() else {
                continue;
            };
            if !freed.insert(buf) {
                out.emit(
                    "memref-double-free",
                    op,
                    "buffer was already deallocated earlier in the program",
                );
            }
            continue;
        }
        for &v in &operation.operands {
            if freed.contains(&v) {
                out.emit(
                    "memref-use-after-free",
                    op,
                    "operand buffer was deallocated earlier in the program",
                );
            }
        }
    }
}

/// Allocations with no dealloc and no escaping use.
fn check_leaks(module: &Module, out: &mut Collector<'_>) {
    for op in module.walk_ops() {
        let Some(operation) = module.op(op) else {
            continue;
        };
        if operation.name != "memref.alloc" {
            continue;
        }
        let Some(&buf) = operation.results.first() else {
            continue;
        };
        let mut deallocated = false;
        let mut escapes = false;
        for (user, _) in module.uses(buf) {
            let Some(u) = module.op(user) else {
                continue;
            };
            if u.name == "memref.dealloc" {
                deallocated = true;
            }
            if ESCAPE_OPS.contains(&u.name.as_str()) {
                escapes = true;
            }
        }
        if !deallocated && !escapes {
            out.emit(
                "memref-leak",
                op,
                "allocation is never deallocated and never escapes this module",
            );
        }
    }
}

/// Constant-index accesses checked against static shapes.
fn check_bounds(module: &Module, out: &mut Collector<'_>) {
    for op in module.walk_ops() {
        let Some(operation) = module.op(op) else {
            continue;
        };
        let (base_index, index_start) = match operation.name.as_str() {
            "memref.load" => (0, 1),
            "memref.store" => (1, 2),
            _ => continue,
        };
        if operation.operands.len() <= base_index {
            continue;
        }
        let Type::MemRef { shape, .. } = module.value_type(operation.operands[base_index]) else {
            continue;
        };
        let indices = &operation.operands[index_start..];
        for (dim, &idx) in shape.iter().zip(indices) {
            let (Some(extent), Some(value)) = (dim, constant_index(module, idx)) else {
                continue;
            };
            if value < 0 || value as u64 >= *extent {
                out.emit(
                    "memref-out-of-bounds",
                    op,
                    format!("index {value} outside dimension of extent {extent}"),
                );
            }
        }
    }
}

/// The constant value of `v`, when it is defined by an `arith.constant`.
fn constant_index(module: &Module, v: ValueId) -> Option<i64> {
    let ValueDef::OpResult { op, .. } = module.value(v).def else {
        return None;
    };
    let operation: &Operation = module.op(op)?;
    if operation.name != "arith.constant" {
        return None;
    }
    operation.int_attr("value")
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::dialects::core;
    use everest_ir::types::MemorySpace;

    use crate::lint::Analyzer;
    use crate::report::AnalysisReport;

    fn run(m: &Module) -> AnalysisReport {
        Analyzer::new()
            .with_lint(Box::new(MemrefLifetime))
            .run(&Context::with_all_dialects(), m)
    }

    fn buf_ty() -> Type {
        Type::memref(&[8], Type::F64, MemorySpace::Host)
    }

    #[test]
    fn balanced_alloc_use_dealloc_is_clean() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = core::alloc(&mut m, top, buf_ty());
        let i = core::const_index(&mut m, top, 3);
        let v = core::const_f64(&mut m, top, 1.0);
        m.build_op("memref.store", [v, buf, i], []).append_to(top);
        m.build_op("memref.dealloc", [buf], []).append_to(top);
        assert!(run(&m).is_clean());
    }

    #[test]
    fn use_after_dealloc_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = core::alloc(&mut m, top, buf_ty());
        let i = core::const_index(&mut m, top, 0);
        m.build_op("memref.dealloc", [buf], []).append_to(top);
        m.build_op("memref.load", [buf, i], [Type::F64])
            .append_to(top);
        let report = run(&m);
        assert_eq!(report.by_lint("memref-use-after-free").len(), 1);
        assert!(report.has_denials());
    }

    #[test]
    fn double_dealloc_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = core::alloc(&mut m, top, buf_ty());
        m.build_op("memref.dealloc", [buf], []).append_to(top);
        m.build_op("memref.dealloc", [buf], []).append_to(top);
        let report = run(&m);
        assert_eq!(report.by_lint("memref-double-free").len(), 1);
    }

    #[test]
    fn leaked_allocation_is_flagged_but_escaping_one_is_not() {
        let mut m = Module::new();
        let top = m.top_block();
        // Leaked: never used again.
        core::alloc(&mut m, top, buf_ty());
        // Escaping: passed to a kernel, whose runtime owns staging.
        let staged = core::alloc(&mut m, top, buf_ty());
        m.build_op("olympus.kernel", [staged], [])
            .attr("callee", everest_ir::Attribute::SymbolRef("k".into()))
            .append_to(top);
        let report = run(&m);
        assert_eq!(report.by_lint("memref-leak").len(), 1);
    }

    #[test]
    fn constant_index_out_of_bounds_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = core::alloc(&mut m, top, buf_ty());
        let i = core::const_index(&mut m, top, 8); // extent is 8: max valid 7
        m.build_op("memref.load", [buf, i], [Type::F64])
            .append_to(top);
        m.build_op("memref.dealloc", [buf], []).append_to(top);
        let report = run(&m);
        assert_eq!(report.by_lint("memref-out-of-bounds").len(), 1);
        assert!(report.diagnostics[0].message.contains("index 8"));
    }

    #[test]
    fn in_bounds_and_dynamic_indices_are_clean() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = core::alloc(&mut m, top, buf_ty());
        let i = core::const_index(&mut m, top, 7);
        m.build_op("memref.load", [buf, i], [Type::F64])
            .append_to(top);
        // Dynamic index: computed, not a constant — no static claim.
        let j = core::binary(&mut m, top, "arith.addi", i, i);
        m.build_op("memref.load", [buf, j], [Type::F64])
            .append_to(top);
        m.build_op("memref.dealloc", [buf], []).append_to(top);
        assert!(run(&m).is_clean());
    }
}
