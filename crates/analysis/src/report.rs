//! Analysis reports: every finding of one analyzer run, with text and
//! machine-readable renderings.

use std::collections::BTreeMap;
use std::fmt;

use crate::diagnostics::{Diagnostic, Severity};

/// The result of running an [`Analyzer`](crate::lint::Analyzer): all
/// diagnostics collected across all lints, in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// Collected findings (severity [`Severity::Allow`] is filtered at
    /// emission time and never appears here).
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// A report with no findings.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when nothing was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one [`Severity::Deny`] finding exists.
    pub fn has_denials(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Number of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Findings emitted under one lint id.
    pub fn by_lint(&self, lint: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.lint == lint).collect()
    }

    /// Appends all findings of another report.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Renders the human-readable report, one finding per line plus a
    /// trailing summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "analysis: {} finding(s), {} deny, {} warn\n",
            self.diagnostics.len(),
            self.count(Severity::Deny),
            self.count(Severity::Warn)
        ));
        out
    }

    /// Renders a machine-readable JSON summary:
    /// `{"total":N,"deny":N,"warn":N,"lints":{"<id>":count,...}}`.
    ///
    /// Hand-rolled (keys are controlled identifiers, counts are
    /// integers) so the crate stays dependency-light.
    pub fn summary_json(&self) -> String {
        let mut per_lint: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &self.diagnostics {
            *per_lint.entry(d.lint.as_str()).or_insert(0) += 1;
        }
        let lints = per_lint
            .iter()
            .map(|(id, n)| format!("\"{id}\":{n}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"total\":{},\"deny\":{},\"warn\":{},\"lints\":{{{}}}}}",
            self.diagnostics.len(),
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            lints
        )
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &str, severity: Severity) -> Diagnostic {
        Diagnostic {
            lint: lint.into(),
            severity,
            op: None,
            path: None,
            message: "m".into(),
        }
    }

    #[test]
    fn empty_report_is_clean() {
        let r = AnalysisReport::new();
        assert!(r.is_clean());
        assert!(!r.has_denials());
        assert_eq!(
            r.summary_json(),
            "{\"total\":0,\"deny\":0,\"warn\":0,\"lints\":{}}"
        );
    }

    #[test]
    fn counts_and_denials() {
        let r = AnalysisReport {
            diagnostics: vec![
                diag("a", Severity::Warn),
                diag("a", Severity::Deny),
                diag("b", Severity::Warn),
            ],
        };
        assert!(!r.is_clean());
        assert!(r.has_denials());
        assert_eq!(r.count(Severity::Warn), 2);
        assert_eq!(r.by_lint("a").len(), 2);
        assert_eq!(
            r.summary_json(),
            "{\"total\":3,\"deny\":1,\"warn\":2,\"lints\":{\"a\":2,\"b\":1}}"
        );
        assert!(r.to_text().contains("3 finding(s), 1 deny, 2 warn"));
    }

    #[test]
    fn merge_concatenates() {
        let mut r = AnalysisReport {
            diagnostics: vec![diag("a", Severity::Warn)],
        };
        r.merge(AnalysisReport {
            diagnostics: vec![diag("b", Severity::Deny)],
        });
        assert_eq!(r.diagnostics.len(), 2);
    }
}
