//! Analysis reports: every finding of one analyzer run, with text and
//! machine-readable renderings.

use std::collections::BTreeMap;
use std::fmt;

use crate::diagnostics::{Diagnostic, Severity};

/// The result of running an [`Analyzer`](crate::lint::Analyzer): all
/// diagnostics collected across all lints, in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// Collected findings (severity [`Severity::Allow`] is filtered at
    /// emission time and never appears here).
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// A report with no findings.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when nothing was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one [`Severity::Deny`] finding exists.
    pub fn has_denials(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Number of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Findings emitted under one lint id.
    pub fn by_lint(&self, lint: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.lint == lint).collect()
    }

    /// Appends all findings of another report.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Sorts the findings into canonical order: structural [`OpPath`]
    /// (module-level findings last), then lint id, then message.
    ///
    /// [`Analyzer::run`](crate::lint::Analyzer::run) normalizes every
    /// report it produces, so renderings — in particular
    /// [`AnalysisReport::to_json`], which the CI analysis gate diffs —
    /// are byte-stable regardless of lint registration or walk order.
    ///
    /// [`OpPath`]: everest_ir::location::OpPath
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.path.is_none(),
                    d.path
                        .as_ref()
                        .map(|p| {
                            p.steps
                                .iter()
                                .map(|s| (s.region, s.block, s.position))
                                .collect::<Vec<_>>()
                        })
                        .unwrap_or_default(),
                )
            };
            key(a)
                .cmp(&key(b))
                .then_with(|| a.lint.cmp(&b.lint))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Renders the human-readable report, one finding per line plus a
    /// trailing summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "analysis: {} finding(s), {} deny, {} warn\n",
            self.diagnostics.len(),
            self.count(Severity::Deny),
            self.count(Severity::Warn)
        ));
        out
    }

    /// Renders a machine-readable JSON summary:
    /// `{"total":N,"deny":N,"warn":N,"lints":{"<id>":count,...}}`.
    ///
    /// Hand-rolled (keys are controlled identifiers, counts are
    /// integers) so the crate stays dependency-light.
    pub fn summary_json(&self) -> String {
        let mut per_lint: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &self.diagnostics {
            *per_lint.entry(d.lint.as_str()).or_insert(0) += 1;
        }
        let lints = per_lint
            .iter()
            .map(|(id, n)| format!("\"{id}\":{n}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"total\":{},\"deny\":{},\"warn\":{},\"lints\":{{{}}}}}",
            self.diagnostics.len(),
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            lints
        )
    }

    /// Renders the full machine-readable document: the
    /// [`AnalysisReport::summary_json`] fields plus every diagnostic.
    ///
    /// Byte-stable for a normalized report (the CI analysis gate diffs
    /// this output against checked-in expectations). Hand-rolled like
    /// the summary; only `message` needs escaping since lint ids, op
    /// names and paths are controlled identifiers.
    pub fn to_json(&self) -> String {
        let diagnostics = self
            .diagnostics
            .iter()
            .map(|d| {
                let op = match &d.op {
                    Some(op) => format!("\"{}\"", json_escape(op)),
                    None => "null".to_string(),
                };
                let path = match &d.path {
                    Some(path) => format!("\"{}\"", json_escape(&path.to_string())),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"lint\":\"{}\",\"severity\":\"{}\",\"op\":{op},\"path\":{path},\
                     \"message\":\"{}\"}}",
                    json_escape(&d.lint),
                    d.severity,
                    json_escape(&d.message)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let summary = self.summary_json();
        let head = summary.strip_suffix('}').unwrap_or(&summary);
        format!("{head},\"diagnostics\":[{diagnostics}]}}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &str, severity: Severity) -> Diagnostic {
        Diagnostic {
            lint: lint.into(),
            severity,
            op: None,
            path: None,
            message: "m".into(),
        }
    }

    #[test]
    fn empty_report_is_clean() {
        let r = AnalysisReport::new();
        assert!(r.is_clean());
        assert!(!r.has_denials());
        assert_eq!(
            r.summary_json(),
            "{\"total\":0,\"deny\":0,\"warn\":0,\"lints\":{}}"
        );
    }

    #[test]
    fn counts_and_denials() {
        let r = AnalysisReport {
            diagnostics: vec![
                diag("a", Severity::Warn),
                diag("a", Severity::Deny),
                diag("b", Severity::Warn),
            ],
        };
        assert!(!r.is_clean());
        assert!(r.has_denials());
        assert_eq!(r.count(Severity::Warn), 2);
        assert_eq!(r.by_lint("a").len(), 2);
        assert_eq!(
            r.summary_json(),
            "{\"total\":3,\"deny\":1,\"warn\":2,\"lints\":{\"a\":2,\"b\":1}}"
        );
        assert!(r.to_text().contains("3 finding(s), 1 deny, 2 warn"));
    }

    #[test]
    fn normalize_orders_by_path_then_lint_then_message() {
        use everest_ir::location::{OpPath, PathStep};
        let step = |position: usize| PathStep {
            region: 0,
            block: 0,
            position,
            op_name: "op".into(),
        };
        let mut r = AnalysisReport {
            diagnostics: vec![
                diag("module-level", Severity::Warn),
                Diagnostic {
                    lint: "b".into(),
                    severity: Severity::Warn,
                    op: Some("x".into()),
                    path: Some(OpPath {
                        steps: vec![step(2)],
                    }),
                    message: "later op".into(),
                },
                Diagnostic {
                    lint: "z".into(),
                    severity: Severity::Warn,
                    op: Some("x".into()),
                    path: Some(OpPath {
                        steps: vec![step(1)],
                    }),
                    message: "earlier op".into(),
                },
                Diagnostic {
                    lint: "a".into(),
                    severity: Severity::Warn,
                    op: Some("x".into()),
                    path: Some(OpPath {
                        steps: vec![step(2)],
                    }),
                    message: "same op, earlier lint".into(),
                },
            ],
        };
        r.normalize();
        let lints: Vec<&str> = r.diagnostics.iter().map(|d| d.lint.as_str()).collect();
        // Program order first, lint id within one op, module-level last.
        assert_eq!(lints, vec!["z", "a", "b", "module-level"]);
    }

    #[test]
    fn full_json_includes_diagnostics_and_escapes_messages() {
        let mut r = AnalysisReport {
            diagnostics: vec![Diagnostic {
                lint: "a".into(),
                severity: Severity::Deny,
                op: Some("arith.addf".into()),
                path: None,
                message: "quote \" and\nnewline".into(),
            }],
        };
        r.normalize();
        let json = r.to_json();
        assert!(json.starts_with("{\"total\":1,\"deny\":1,\"warn\":0,"));
        assert!(json.contains("\"diagnostics\":[{\"lint\":\"a\",\"severity\":\"deny\""));
        assert!(json.contains("quote \\\" and\\nnewline"));
        assert!(json.contains("\"path\":null"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn merge_concatenates() {
        let mut r = AnalysisReport {
            diagnostics: vec![diag("a", Severity::Warn)],
        };
        r.merge(AnalysisReport {
            diagnostics: vec![diag("b", Severity::Deny)],
        });
        assert_eq!(r.diagnostics.len(), 2);
    }
}
