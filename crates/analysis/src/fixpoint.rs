//! Generic fixpoint dataflow framework: a join-semilattice trait and a
//! deterministic worklist solver shared by every flow-sensitive lint.
//!
//! The solver is deliberately small and graph-shaped rather than
//! CFG-shaped: analyses build a [`FlowGraph`] whose nodes are whatever
//! the analysis ranges over — SSA values for interval propagation,
//! dataflow-graph actors for channel productivity, kernel symbols for
//! latency — and an edge `u -> v` means "the fact at `v` depends on the
//! fact at `u`", so `v` must be revisited whenever `u` changes.
//!
//! Transfer functions receive the *whole* state vector, not just the
//! join of predecessors. That generality is what lets one solver serve
//! interval arithmetic (`add` needs both operand states separately),
//! min-over-inputs channel productivity, and max-over-paths latency.
//!
//! Determinism and termination:
//!
//! * the worklist is seeded with every node in index order and
//!   deduplicated, so a run is a pure function of the graph and the
//!   transfer function — no hashing, no pointer order;
//! * for a monotone transfer function over a finite-height lattice the
//!   solver reaches the unique least fixpoint regardless of
//!   [`WorklistOrder`] (property-tested in `tests/solver_props.rs`);
//! * a step budget bounds divergent transfer functions: if the budget
//!   is exhausted the result is flagged `converged == false` and the
//!   caller must degrade gracefully (e.g. report "unbounded").

/// A join-semilattice: partially ordered facts with a least element and
/// a least upper bound.
///
/// Implementations must satisfy the usual laws (join is associative,
/// commutative, idempotent; `bottom` is its identity) and transfer
/// functions built on top must be monotone for the solver's
/// order-independence guarantee to hold.
pub trait Lattice: Clone + PartialEq + std::fmt::Debug {
    /// The least element: "no information yet".
    fn bottom() -> Self;

    /// Least upper bound of `self` and `other`.
    fn join(&self, other: &Self) -> Self;

    /// Joins `other` into `self`, returning whether `self` changed.
    /// The default goes through [`Lattice::join`]; override for speed.
    fn join_with(&mut self, other: &Self) -> bool {
        let joined = self.join(other);
        if joined == *self {
            false
        } else {
            *self = joined;
            true
        }
    }
}

/// Which way facts flow through the graph edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along edges: updating `u` re-queues its successors.
    Forward,
    /// Facts flow against edges: updating `u` re-queues its
    /// predecessors (e.g. liveness-style analyses).
    Backward,
}

/// Worklist discipline. Both orders reach the same least fixpoint for
/// monotone transfer functions; they differ only in how many
/// intermediate steps they take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorklistOrder {
    /// First-in first-out: breadth-first style propagation.
    Fifo,
    /// Last-in first-out: depth-first style propagation.
    Lifo,
}

/// The dependency graph a fixpoint runs over.
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl FlowGraph {
    /// Creates a graph with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> FlowGraph {
        FlowGraph {
            succs: vec![Vec::new(); nodes],
            preds: vec![Vec::new(); nodes],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Adds a dependency edge `from -> to` ("`to` reads `from`").
    /// Duplicate edges are kept out so re-queueing stays linear.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < self.len() && to < self.len(), "edge out of bounds");
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.preds[to].push(from);
        }
    }

    /// Successors of `node` (nodes that read its fact).
    pub fn succs(&self, node: usize) -> &[usize] {
        &self.succs[node]
    }

    /// Predecessors of `node` (nodes whose facts it reads).
    pub fn preds(&self, node: usize) -> &[usize] {
        &self.preds[node]
    }
}

/// The result of a solver run.
#[derive(Debug, Clone)]
pub struct Fixpoint<L> {
    /// Per-node facts at the fixpoint (or at budget exhaustion).
    pub states: Vec<L>,
    /// Number of transfer-function applications performed.
    pub steps: usize,
    /// False when the step budget ran out before stabilising. Callers
    /// must treat the states as an under-approximation in that case.
    pub converged: bool,
}

/// Runs a worklist fixpoint over `graph`.
///
/// `seed` provides the initial per-node facts (use
/// [`Lattice::bottom`] for "no information"). `transfer` maps a node
/// index and the current state vector to the node's new fact; the
/// solver joins that fact into the node's state and, on change,
/// re-queues the node's dependents (successors for
/// [`Direction::Forward`], predecessors for [`Direction::Backward`]).
///
/// `max_steps` bounds the total number of transfer applications; pass
/// e.g. `64 * graph.len()` for analyses whose lattice height is small
/// and check [`Fixpoint::converged`] on the way out.
pub fn solve<L, F>(
    graph: &FlowGraph,
    direction: Direction,
    order: WorklistOrder,
    seed: Vec<L>,
    mut transfer: F,
    max_steps: usize,
) -> Fixpoint<L>
where
    L: Lattice,
    F: FnMut(usize, &[L]) -> L,
{
    assert_eq!(seed.len(), graph.len(), "seed must cover every node");
    let mut states = seed;
    let mut queued = vec![true; graph.len()];
    let mut worklist: std::collections::VecDeque<usize> = (0..graph.len()).collect();
    let mut steps = 0usize;
    while let Some(node) = match order {
        WorklistOrder::Fifo => worklist.pop_front(),
        WorklistOrder::Lifo => worklist.pop_back(),
    } {
        queued[node] = false;
        if steps >= max_steps {
            return Fixpoint {
                states,
                steps,
                converged: false,
            };
        }
        steps += 1;
        let fact = transfer(node, &states);
        if states[node].join_with(&fact) {
            let dependents = match direction {
                Direction::Forward => graph.succs(node),
                Direction::Backward => graph.preds(node),
            };
            for &dep in dependents {
                if !queued[dep] {
                    queued[dep] = true;
                    worklist.push_back(dep);
                }
            }
        }
    }
    Fixpoint {
        states,
        steps,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reachability: the simplest useful lattice (false < true).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Reach(bool);

    impl Lattice for Reach {
        fn bottom() -> Reach {
            Reach(false)
        }
        fn join(&self, other: &Reach) -> Reach {
            Reach(self.0 || other.0)
        }
    }

    fn diamond() -> FlowGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, and an unreachable node 4.
        let mut g = FlowGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    fn reach_transfer(root: usize) -> impl Fn(usize, &[Reach]) -> Reach {
        move |node, states: &[Reach]| {
            if node == root {
                Reach(true)
            } else {
                // Reachable iff any predecessor is; preds are encoded in
                // the closure by the test graphs being forward graphs.
                Reach(states[node].0)
            }
        }
    }

    #[test]
    fn forward_reachability_reaches_the_obvious_fixpoint() {
        let g = diamond();
        let transfer = |node: usize, states: &[Reach]| {
            if node == 0 {
                Reach(true)
            } else {
                g.preds(node)
                    .iter()
                    .fold(Reach::bottom(), |acc, &p| acc.join(&states[p]))
            }
        };
        let result = solve(
            &g,
            Direction::Forward,
            WorklistOrder::Fifo,
            vec![Reach::bottom(); g.len()],
            transfer,
            1_000,
        );
        assert!(result.converged);
        assert_eq!(
            result.states,
            vec![
                Reach(true),
                Reach(true),
                Reach(true),
                Reach(true),
                Reach(false)
            ]
        );
    }

    #[test]
    fn fifo_and_lifo_agree() {
        let g = diamond();
        let transfer = |node: usize, states: &[Reach]| {
            if node == 3 {
                Reach(true)
            } else {
                g.succs(node)
                    .iter()
                    .fold(Reach::bottom(), |acc, &s| acc.join(&states[s]))
            }
        };
        let fifo = solve(
            &g,
            Direction::Backward,
            WorklistOrder::Fifo,
            vec![Reach::bottom(); g.len()],
            transfer,
            1_000,
        );
        let lifo = solve(
            &g,
            Direction::Backward,
            WorklistOrder::Lifo,
            vec![Reach::bottom(); g.len()],
            transfer,
            1_000,
        );
        assert!(fifo.converged && lifo.converged);
        assert_eq!(fifo.states, lifo.states);
        // Backward: everything that can reach node 3.
        assert_eq!(
            fifo.states,
            vec![
                Reach(true),
                Reach(true),
                Reach(true),
                Reach(true),
                Reach(false)
            ]
        );
    }

    #[test]
    fn step_budget_flags_divergence() {
        // A transfer that never stabilises on a cycle of a lattice with
        // no top: model it by a counter lattice capped only by budget.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        struct Count(u64);
        impl Lattice for Count {
            fn bottom() -> Count {
                Count(0)
            }
            fn join(&self, other: &Count) -> Count {
                Count(self.0.max(other.0))
            }
        }
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let result = solve(
            &g,
            Direction::Forward,
            WorklistOrder::Fifo,
            vec![Count::bottom(); 2],
            |node, states: &[Count]| Count(states[node].0 + 1),
            64,
        );
        assert!(!result.converged);
        assert_eq!(result.steps, 64);
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = FlowGraph::new(0);
        let result = solve(
            &g,
            Direction::Forward,
            WorklistOrder::Fifo,
            Vec::<Reach>::new(),
            reach_transfer(0),
            10,
        );
        assert!(result.converged);
        assert!(result.states.is_empty());
    }
}
