//! HLS pre-synthesis lints: patterns that inflate the initiation
//! interval or block loop pipelining when the module reaches the HLS
//! engine.

use std::collections::HashSet;

use everest_ir::ids::{OpId, ValueId};
use everest_ir::module::{Module, Operation, ValueDef};
use everest_ir::registry::{Context, OpTrait};

use crate::diagnostics::Severity;
use crate::lint::{Collector, Lint, LintInfo};

/// Pre-synthesis checks over `scf.for` loops.
#[derive(Debug, Clone, Copy, Default)]
pub struct HlsPreSynthesis;

const HLS_LINTS: &[LintInfo] = &[
    LintInfo {
        id: "hls-loop-invariant",
        description: "loop-invariant computation re-evaluated every iteration",
        default_severity: Severity::Warn,
    },
    LintInfo {
        id: "hls-unpipelinable",
        description: "pattern that prevents pipelining the loop (II > 1)",
        default_severity: Severity::Warn,
    },
];

impl Lint for HlsPreSynthesis {
    fn name(&self) -> &'static str {
        "hls-presynthesis"
    }

    fn lints(&self) -> &'static [LintInfo] {
        HLS_LINTS
    }

    fn run(&self, ctx: &Context, module: &Module, out: &mut Collector<'_>) {
        for op in module.walk_ops() {
            let Some(operation) = module.op(op) else {
                continue;
            };
            if operation.name == "scf.for" {
                check_loop(ctx, module, op, operation, out);
            }
        }
    }
}

fn check_loop(
    ctx: &Context,
    module: &Module,
    for_op: OpId,
    operation: &Operation,
    out: &mut Collector<'_>,
) {
    // Everything defined inside the loop (op results and block args of
    // every nested block, including inner loops).
    let body_ops = module.walk_nested(for_op);
    let mut inside: HashSet<ValueId> = HashSet::new();
    for &region in &operation.regions {
        collect_block_args(module, region, &mut inside);
    }
    for &op in &body_ops {
        if let Some(o) = module.op(op) {
            inside.extend(o.results.iter().copied());
        }
    }

    let induction = operation
        .regions
        .first()
        .and_then(|&r| module.region(r).blocks.first())
        .and_then(|&b| module.block(b).args.first())
        .copied();

    for &op in &body_ops {
        let Some(o) = module.op(op) else {
            continue;
        };
        check_invariant(ctx, op, o, &inside, out);
        check_inner_trip_count(ctx, module, op, o, out);
    }
    check_memory_dependency(module, &body_ops, induction, out);
}

fn collect_block_args(
    module: &Module,
    region: everest_ir::ids::RegionId,
    inside: &mut HashSet<ValueId>,
) {
    for &block in &module.region(region).blocks {
        inside.extend(module.block(block).args.iter().copied());
        for &op in &module.block(block).ops {
            if let Some(o) = module.op(op) {
                for &nested in &o.regions {
                    collect_block_args(module, nested, inside);
                }
            }
        }
    }
}

/// A pure, non-constant op whose operands all come from outside the
/// loop recomputes the same value every iteration: HLS replicates the
/// datapath (or lengthens the II) for work LICM could hoist.
fn check_invariant(
    ctx: &Context,
    op: OpId,
    operation: &Operation,
    inside: &HashSet<ValueId>,
    out: &mut Collector<'_>,
) {
    if !ctx.op_has_trait(&operation.name, OpTrait::Pure)
        || ctx.op_has_trait(&operation.name, OpTrait::ConstantLike)
        || !operation.regions.is_empty()
        || operation.operands.is_empty()
    {
        return;
    }
    if operation.operands.iter().all(|v| !inside.contains(v)) {
        out.emit(
            "hls-loop-invariant",
            op,
            "operands are all loop-invariant; hoist this op out of the \
             loop before synthesis",
        );
    }
}

/// An inner loop whose upper bound is not a compile-time constant
/// cannot be unrolled or flattened, so the enclosing loop cannot be
/// pipelined with a fixed initiation interval.
fn check_inner_trip_count(
    ctx: &Context,
    module: &Module,
    op: OpId,
    operation: &Operation,
    out: &mut Collector<'_>,
) {
    if operation.name != "scf.for" || operation.operands.len() < 2 {
        return;
    }
    let ub = operation.operands[1];
    let ValueDef::OpResult { op: def, .. } = module.value(ub).def else {
        // Upper bound is a block argument: data-dependent trip count.
        out.emit(
            "hls-unpipelinable",
            op,
            "inner loop trip count is data-dependent; the outer loop \
             cannot be pipelined with a fixed initiation interval",
        );
        return;
    };
    let constant = module
        .op(def)
        .is_some_and(|o| ctx.op_has_trait(&o.name, OpTrait::ConstantLike));
    if !constant {
        out.emit(
            "hls-unpipelinable",
            op,
            "inner loop upper bound is computed at runtime; the outer \
             loop cannot be pipelined with a fixed initiation interval",
        );
    }
}

/// A buffer both stored through a computed index and loaded in the same
/// loop body carries a potential inter-iteration dependency through
/// memory, forcing II > 1.
fn check_memory_dependency(
    module: &Module,
    body_ops: &[OpId],
    induction: Option<ValueId>,
    out: &mut Collector<'_>,
) {
    let mut loaded: HashSet<ValueId> = HashSet::new();
    for &op in body_ops {
        let Some(o) = module.op(op) else {
            continue;
        };
        if o.name == "memref.load" {
            if let Some(&buf) = o.operands.first() {
                loaded.insert(buf);
            }
        }
    }
    for &op in body_ops {
        let Some(o) = module.op(op) else {
            continue;
        };
        if o.name != "memref.store" || o.operands.len() < 3 {
            continue;
        }
        let buf = o.operands[1];
        if !loaded.contains(&buf) {
            continue;
        }
        let computed_index = o.operands[2..]
            .iter()
            .any(|&idx| Some(idx) != induction && !is_constant(module, idx));
        if computed_index {
            out.emit(
                "hls-unpipelinable",
                op,
                "store through a computed index into a buffer also read in \
                 this loop: potential loop-carried dependency (II > 1)",
            );
        }
    }
}

fn is_constant(module: &Module, v: ValueId) -> bool {
    let ValueDef::OpResult { op, .. } = module.value(v).def else {
        return false;
    };
    module.op(op).is_some_and(|o| o.name == "arith.constant")
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::dialects::core;
    use everest_ir::types::{MemorySpace, Type};

    use crate::lint::Analyzer;
    use crate::report::AnalysisReport;

    fn run(m: &Module) -> AnalysisReport {
        Analyzer::new()
            .with_lint(Box::new(HlsPreSynthesis))
            .run(&Context::with_all_dialects(), m)
    }

    fn loop_bounds(m: &mut Module, top: everest_ir::BlockId) -> (ValueId, ValueId, ValueId) {
        (
            core::const_index(m, top, 0),
            core::const_index(m, top, 8),
            core::const_index(m, top, 1),
        )
    }

    #[test]
    fn loop_invariant_computation_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let x = core::const_f64(&mut m, top, 3.0);
        let (lb, ub, step) = loop_bounds(&mut m, top);
        let (_f, body) = core::build_for(&mut m, top, lb, ub, step);
        // x * x does not depend on the induction variable.
        core::binary(&mut m, body, "arith.mulf", x, x);
        m.build_op("scf.yield", [], []).append_to(body);
        let report = run(&m);
        assert_eq!(report.by_lint("hls-loop-invariant").len(), 1);
        assert!(report.diagnostics[0].message.contains("hoist"));
    }

    #[test]
    fn induction_dependent_computation_is_clean() {
        let mut m = Module::new();
        let top = m.top_block();
        let (lb, ub, step) = loop_bounds(&mut m, top);
        let (_f, body) = core::build_for(&mut m, top, lb, ub, step);
        let iv = m.block(body).args[0];
        core::binary(&mut m, body, "arith.addi", iv, iv);
        m.build_op("scf.yield", [], []).append_to(body);
        let report = run(&m);
        assert!(report.by_lint("hls-loop-invariant").is_empty());
    }

    #[test]
    fn runtime_trip_count_inner_loop_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let (lb, ub, step) = loop_bounds(&mut m, top);
        let (_outer, body) = core::build_for(&mut m, top, lb, ub, step);
        let iv = m.block(body).args[0];
        // Inner loop bound depends on the outer induction variable.
        let (_inner, inner_body) = core::build_for(&mut m, body, lb, iv, step);
        m.build_op("scf.yield", [], []).append_to(inner_body);
        m.build_op("scf.yield", [], []).append_to(body);
        let report = run(&m);
        assert_eq!(report.by_lint("hls-unpipelinable").len(), 1);
        assert!(report.diagnostics[0]
            .message
            .contains("initiation interval"));
    }

    #[test]
    fn constant_trip_count_inner_loop_is_clean() {
        let mut m = Module::new();
        let top = m.top_block();
        let (lb, ub, step) = loop_bounds(&mut m, top);
        let (_outer, body) = core::build_for(&mut m, top, lb, ub, step);
        let (_inner, inner_body) = core::build_for(&mut m, body, lb, ub, step);
        m.build_op("scf.yield", [], []).append_to(inner_body);
        m.build_op("scf.yield", [], []).append_to(body);
        assert!(run(&m).by_lint("hls-unpipelinable").is_empty());
    }

    #[test]
    fn computed_index_store_with_load_is_flagged() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = core::alloc(&mut m, top, Type::memref(&[8], Type::F64, MemorySpace::Plm));
        let one = core::const_index(&mut m, top, 1);
        let (lb, ub, step) = loop_bounds(&mut m, top);
        let (_f, body) = core::build_for(&mut m, top, lb, ub, step);
        let iv = m.block(body).args[0];
        let v = m
            .build_op("memref.load", [buf, iv], [Type::F64])
            .append_to(body);
        let v = everest_ir::module::single_result(&m, v);
        // Store to buf[iv + 1]: loop-carried dependency with the load.
        let shifted = core::binary(&mut m, body, "arith.addi", iv, one);
        m.build_op("memref.store", [v, buf, shifted], [])
            .append_to(body);
        m.build_op("scf.yield", [], []).append_to(body);
        let report = run(&m);
        assert_eq!(report.by_lint("hls-unpipelinable").len(), 1);
        assert!(report.diagnostics[0].message.contains("loop-carried"));
    }

    #[test]
    fn streaming_store_through_induction_variable_is_clean() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = core::alloc(&mut m, top, Type::memref(&[8], Type::F64, MemorySpace::Plm));
        let (lb, ub, step) = loop_bounds(&mut m, top);
        let (_f, body) = core::build_for(&mut m, top, lb, ub, step);
        let iv = m.block(body).args[0];
        let v = m
            .build_op("memref.load", [buf, iv], [Type::F64])
            .append_to(body);
        let v = everest_ir::module::single_result(&m, v);
        m.build_op("memref.store", [v, buf, iv], []).append_to(body);
        m.build_op("scf.yield", [], []).append_to(body);
        assert!(run(&m).by_lint("hls-unpipelinable").is_empty());
    }
}
