//! Property tests for the fixpoint worklist solver: on random graphs
//! with monotone transfer functions the solver must terminate within
//! its budget and the fixpoint it reaches must be independent of the
//! worklist discipline (FIFO vs LIFO) and of edge insertion order —
//! the classical confluence property of Kleene iteration over a
//! finite-height lattice.

use proptest::prelude::*;

use everest_analysis::{solve, Direction, FlowGraph, Lattice, WorklistOrder};

/// Reachability-from-roots: the simplest useful join-semilattice.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Reach(bool);

impl Lattice for Reach {
    fn bottom() -> Reach {
        Reach(false)
    }

    fn join(&self, other: &Reach) -> Reach {
        Reach(self.0 || other.0)
    }
}

/// Longest-known-distance capped at the node count: finite height, so
/// iteration converges even on cyclic graphs, but the cap is reached
/// through genuinely order-dependent intermediate states.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Depth(u32);

impl Lattice for Depth {
    fn bottom() -> Depth {
        Depth(0)
    }

    fn join(&self, other: &Depth) -> Depth {
        Depth(self.0.max(other.0))
    }
}

fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> FlowGraph {
    let mut graph = FlowGraph::new(n);
    for &(from, to) in edges {
        graph.add_edge(from % n, to % n);
    }
    graph
}

/// Node count plus raw edge endpoints; `graph_from_edges` folds the
/// endpoints into range with `% n`, so any drawn pair is a valid edge.
fn arbitrary_edges(max_nodes: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (
        2..max_nodes,
        proptest::collection::vec((0usize..64, 0usize..64), 0..3 * max_nodes),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO and LIFO disciplines converge to the identical fixpoint
    /// for forward reachability on arbitrary (cyclic) graphs, and both
    /// stay inside the budget.
    #[test]
    fn worklist_order_does_not_change_the_reachability_fixpoint(
        shape in arbitrary_edges(24),
        roots in proptest::collection::vec(0usize..24, 1..4),
    ) {
        let (n, edges) = shape;
        let graph = graph_from_edges(n, &edges);
        let mut seed = vec![Reach(false); n];
        for &root in &roots {
            seed[root % n] = Reach(true);
        }
        let budget = 4 * (n + edges.len()) * (n + 1) + 16;
        let transfer = |node: usize, states: &[Reach], graph: &FlowGraph| {
            let mut fact = states[node].clone();
            for &pred in graph.preds(node) {
                fact = fact.join(&states[pred]);
            }
            fact
        };
        let fifo = solve(
            &graph,
            Direction::Forward,
            WorklistOrder::Fifo,
            seed.clone(),
            |node, states| transfer(node, states, &graph),
            budget,
        );
        let lifo = solve(
            &graph,
            Direction::Forward,
            WorklistOrder::Lifo,
            seed,
            |node, states| transfer(node, states, &graph),
            budget,
        );
        prop_assert!(fifo.converged, "FIFO exceeded its budget");
        prop_assert!(lifo.converged, "LIFO exceeded its budget");
        prop_assert_eq!(fifo.states, lifo.states);
    }

    /// Same confluence for a taller lattice (capped longest distance),
    /// backward direction, and with the edge list reversed — the
    /// fixpoint must not depend on insertion order either.
    #[test]
    fn edge_order_and_direction_do_not_change_the_depth_fixpoint(
        shape in arbitrary_edges(16),
    ) {
        let (n, edges) = shape;
        let cap = n as u32;
        let forward_edges = graph_from_edges(n, &edges);
        let reversed: Vec<(usize, usize)> = edges.iter().rev().copied().collect();
        let shuffled = graph_from_edges(n, &reversed);
        let budget = 4 * (n + edges.len()) * (n + 1) + 16;
        let run = |graph: &FlowGraph, order: WorklistOrder| {
            solve(
                graph,
                Direction::Backward,
                order,
                vec![Depth(0); n],
                |node, states: &[Depth]| {
                    let mut fact = states[node].clone();
                    for &succ in graph.succs(node) {
                        fact = fact.join(&Depth((states[succ].0 + 1).min(cap)));
                    }
                    fact
                },
                budget,
            )
        };
        let a = run(&forward_edges, WorklistOrder::Fifo);
        let b = run(&shuffled, WorklistOrder::Lifo);
        prop_assert!(a.converged && b.converged, "budget exceeded");
        prop_assert_eq!(a.states, b.states);
    }
}
