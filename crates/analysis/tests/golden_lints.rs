//! Golden-file test for the human-readable lint rendering: a crafted
//! module exercising the fixpoint-powered lints must produce exactly
//! the committed report text. Because `Analyzer::run` normalizes every
//! report, the rendering is byte-stable across lint registration and
//! walk order — exactly the property the CI analysis gate leans on.
//!
//! To regenerate after an intentional message change:
//! `UPDATE_GOLDEN=1 cargo test -p everest-analysis --test golden_lints`

use everest_analysis::Analyzer;
use everest_ir::attr::Attribute;
use everest_ir::dialects::core::{alloc, build_for, build_func, const_index};
use everest_ir::module::{single_result, Module};
use everest_ir::registry::Context;
use everest_ir::types::{MemorySpace, Type};

const GOLDEN_PATH: &str = "tests/golden/buggy_module.txt";

/// One module, three provable bugs:
/// * a host→device CPU bounce (memory-space-escape),
/// * an induction variable shifted past the memref extent
///   (interval-out-of-bounds),
/// * a worst-case latency bound above the declared deadline
///   (latency-deadline).
fn buggy_module() -> Module {
    let mut m = Module::new();
    let top = m.top_block();
    let (func, body) = build_func(&mut m, top, "buggy", &[], &[]);
    let host = alloc(
        &mut m,
        body,
        Type::memref(&[8], Type::F64, MemorySpace::Host),
    );
    let dev = alloc(
        &mut m,
        body,
        Type::memref(&[8], Type::F64, MemorySpace::Device),
    );
    // CPU bounce: element-wise host → device without olympus.dma.
    let zero = const_index(&mut m, body, 0);
    let bounced = m
        .build_op("memref.load", vec![host, zero], vec![Type::F64])
        .append_to(body);
    let bounced = single_result(&m, bounced);
    m.build_op("memref.store", vec![bounced, dev, zero], vec![])
        .append_to(body);
    // Shifted induction variable: buf[i + 8] over extent 8.
    let lb = const_index(&mut m, body, 0);
    let ub = const_index(&mut m, body, 8);
    let step = const_index(&mut m, body, 1);
    let (_for_op, loop_body) = build_for(&mut m, body, lb, ub, step);
    let iv = m.block(loop_body).args[0];
    let shift = const_index(&mut m, loop_body, 8);
    let idx = m
        .build_op("arith.addi", vec![iv, shift], vec![Type::Index])
        .append_to(loop_body);
    let idx = single_result(&m, idx);
    let x = m
        .build_op("memref.load", vec![dev, idx], vec![Type::F64])
        .append_to(loop_body);
    let x = single_result(&m, x);
    let y = m
        .build_op("arith.mulf", vec![x, x], vec![Type::F64])
        .append_to(loop_body);
    let y = single_result(&m, y);
    m.build_op("memref.store", vec![y, host, zero], vec![])
        .append_to(body);
    m.build_op("func.return", vec![], vec![]).append_to(body);
    // A deadline no execution can meet (the loop alone costs more).
    if let Some(op) = m.op_mut(func) {
        op.attributes
            .insert("deadline_us".into(), Attribute::Float(0.01));
    }
    m
}

#[test]
fn buggy_module_report_matches_the_golden_file() {
    let ctx = Context::with_all_dialects();
    let module = buggy_module();
    let report = Analyzer::with_default_lints().run(&ctx, &module);
    let text = report.to_text();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}; run with UPDATE_GOLDEN=1", GOLDEN_PATH));
    assert_eq!(
        text, golden,
        "lint text drifted from {GOLDEN_PATH}; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn buggy_module_report_is_stable_across_reruns() {
    let ctx = Context::with_all_dialects();
    let module = buggy_module();
    let analyzer = Analyzer::with_default_lints();
    let a = analyzer.run(&ctx, &module);
    let b = analyzer.run(&ctx, &module);
    assert_eq!(a.to_json(), b.to_json());
    assert!(!a.by_lint("memory-space-escape").is_empty());
    assert!(!a.by_lint("interval-out-of-bounds").is_empty());
    assert!(!a.by_lint("latency-deadline").is_empty());
}
