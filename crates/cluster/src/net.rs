//! Ground-truth connectivity derived from a fault plan's network
//! windows.
//!
//! The cluster layer is the only consumer of the network
//! [`FaultKind`]s: a [`NetModel`] compiles the plan's partition, delay
//! and loss windows into an oracle answering "does a message from `a`
//! to `b` get through at virtual time `t`?". Probes are the unit of
//! exchange — a probe succeeds only when both directions deliver
//! inside the prober's timeout, with message loss drawn from a stream
//! forked off the plan seed so the same plan replays the same drops.

use everest_faults::{DetRng, FaultKind, FaultPlan};

/// Whether `a` and `b` sit on opposite sides of the `group` bitmask.
fn crosses(group: u64, a: usize, b: usize) -> bool {
    let side = |n: usize| n < 64 && (group >> n) & 1 == 1;
    side(a) != side(b)
}

/// The compiled network-fault windows for one plan.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Symmetric cuts: `(from_us, until_us, group)`.
    sym: Vec<(f64, f64, u64)>,
    /// One-way cuts (outbound from `group` lost): `(from_us, until_us, group)`.
    asym: Vec<(f64, f64, u64)>,
    /// Delay windows: `(from_us, until_us, group, delay_us)`.
    delay: Vec<(f64, f64, u64, f64)>,
    /// Loss windows: `(from_us, until_us, group, probability)`.
    loss: Vec<(f64, f64, u64, f64)>,
    /// Seeded stream for per-probe loss draws.
    rng: DetRng,
}

impl NetModel {
    /// Compiles the plan's network faults. Non-network kinds are the
    /// device layers' business and are ignored here.
    pub fn from_plan(plan: &FaultPlan) -> NetModel {
        let mut model = NetModel {
            sym: Vec::new(),
            asym: Vec::new(),
            delay: Vec::new(),
            loss: Vec::new(),
            rng: DetRng::new(plan.seed).fork(0x7E7A11),
        };
        for f in plan.faults() {
            match f.kind {
                FaultKind::PartitionSym { group, duration_us } => {
                    model.sym.push((f.at_us, f.at_us + duration_us, group));
                }
                FaultKind::PartitionAsym { group, duration_us } => {
                    model.asym.push((f.at_us, f.at_us + duration_us, group));
                }
                FaultKind::MsgDelay {
                    group,
                    delay_us,
                    duration_us,
                } => {
                    model
                        .delay
                        .push((f.at_us, f.at_us + duration_us, group, delay_us.max(0.0)));
                }
                FaultKind::MsgLoss {
                    group,
                    loss,
                    duration_us,
                } => {
                    model
                        .loss
                        .push((f.at_us, f.at_us + duration_us, group, loss.clamp(0.0, 1.0)));
                }
                FaultKind::NodeCrash
                | FaultKind::LinkDegrade { .. }
                | FaultKind::DmaTimeout
                | FaultKind::PartialReconfigFail
                | FaultKind::TransientKernelError
                | FaultKind::MemoryEcc
                | FaultKind::VfUnplug { .. }
                | FaultKind::SlowNode { .. }
                | FaultKind::GrayLink { .. }
                | FaultKind::VfCreep { .. } => {}
            }
        }
        model
    }

    /// One-way hard cut: `true` when a symmetric window separates the
    /// pair, or an asymmetric window has the sender on the cut side.
    pub fn severed(&self, from: usize, to: usize, now_us: f64) -> bool {
        self.sym
            .iter()
            .any(|&(s, e, g)| now_us >= s && now_us < e && crosses(g, from, to))
            || self.asym.iter().any(|&(s, e, g)| {
                now_us >= s
                    && now_us < e
                    && crosses(g, from, to)
                    && from < 64
                    && (g >> from) & 1 == 1
            })
    }

    /// Worst added one-way latency for a message `from -> to` at `now_us`.
    pub fn delay_us(&self, from: usize, to: usize, now_us: f64) -> f64 {
        self.delay
            .iter()
            .filter(|&&(s, e, g, _)| now_us >= s && now_us < e && crosses(g, from, to))
            .map(|&(_, _, _, d)| d)
            .fold(0.0, f64::max)
    }

    /// Worst per-message drop probability for `from -> to` at `now_us`.
    pub fn loss_prob(&self, from: usize, to: usize, now_us: f64) -> f64 {
        self.loss
            .iter()
            .filter(|&&(s, e, g, _)| now_us >= s && now_us < e && crosses(g, from, to))
            .map(|&(_, _, _, p)| p)
            .fold(0.0, f64::max)
    }

    /// One full probe round trip `from -> to -> from` at `now_us`:
    /// fails on a severed direction, on a round-trip delay beyond
    /// `timeout_us`, or on a seeded loss draw.
    pub fn probe_ok(&mut self, from: usize, to: usize, now_us: f64, timeout_us: f64) -> bool {
        if self.severed(from, to, now_us) || self.severed(to, from, now_us) {
            return false;
        }
        if self.delay_us(from, to, now_us) + self.delay_us(to, from, now_us) > timeout_us {
            return false;
        }
        let loss = self
            .loss_prob(from, to, now_us)
            .max(self.loss_prob(to, from, now_us));
        !(loss > 0.0 && self.rng.next_unit() < loss)
    }

    /// Whether any network window is active at `now_us`.
    pub fn disturbed(&self, now_us: f64) -> bool {
        let live = |s: f64, e: f64| now_us >= s && now_us < e;
        self.sym.iter().any(|&(s, e, _)| live(s, e))
            || self.asym.iter().any(|&(s, e, _)| live(s, e))
            || self.delay.iter().any(|&(s, e, _, _)| live(s, e))
            || self.loss.iter().any(|&(s, e, _, _)| live(s, e))
    }

    /// The instant the last network window closes (0 when none exist):
    /// past this, connectivity is permanently healed.
    pub fn last_window_end_us(&self) -> f64 {
        let ends = self
            .sym
            .iter()
            .map(|&(_, e, _)| e)
            .chain(self.asym.iter().map(|&(_, e, _)| e))
            .chain(self.delay.iter().map(|&(_, e, _, _)| e))
            .chain(self.loss.iter().map(|&(_, e, _, _)| e));
        ends.fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_faults::FaultSpec;

    fn plan() -> FaultPlan {
        FaultPlan::new(11)
            .with_fault(FaultSpec::new(
                1_000.0,
                0,
                FaultKind::PartitionSym {
                    group: 0b0001,
                    duration_us: 2_000.0,
                },
            ))
            .with_fault(FaultSpec::new(
                5_000.0,
                0,
                FaultKind::PartitionAsym {
                    group: 0b0010,
                    duration_us: 1_000.0,
                },
            ))
            .with_fault(FaultSpec::new(
                8_000.0,
                0,
                FaultKind::MsgDelay {
                    group: 0b0100,
                    delay_us: 900.0,
                    duration_us: 1_000.0,
                },
            ))
            .with_fault(FaultSpec::new(
                10_000.0,
                0,
                FaultKind::MsgLoss {
                    group: 0b1000,
                    loss: 1.0,
                    duration_us: 1_000.0,
                },
            ))
    }

    #[test]
    fn symmetric_cuts_sever_both_directions() {
        let net = NetModel::from_plan(&plan());
        assert!(!net.severed(0, 1, 500.0), "before the window");
        assert!(net.severed(0, 1, 1_500.0));
        assert!(net.severed(1, 0, 1_500.0));
        assert!(!net.severed(0, 1, 3_000.0), "healed");
        assert!(!net.severed(2, 3, 1_500.0), "same side unaffected");
    }

    #[test]
    fn asymmetric_cuts_sever_outbound_only() {
        let net = NetModel::from_plan(&plan());
        assert!(net.severed(1, 0, 5_500.0), "outbound from the group lost");
        assert!(!net.severed(0, 1, 5_500.0), "inbound still delivers");
        let mut net = net;
        assert!(
            !net.probe_ok(0, 1, 5_500.0, 1e9),
            "a probe still fails: the ack direction is cut"
        );
    }

    #[test]
    fn delay_and_loss_fail_probes() {
        let mut net = NetModel::from_plan(&plan());
        assert!(!net.probe_ok(2, 0, 8_500.0, 1_000.0), "1800us rtt > 1000us");
        assert!(net.probe_ok(2, 0, 8_500.0, 2_000.0), "generous timeout");
        assert!(!net.probe_ok(3, 0, 10_500.0, 1e9), "loss=1.0 always drops");
        assert!(net.probe_ok(3, 0, 12_000.0, 1e9), "window over");
    }

    #[test]
    fn window_bookkeeping() {
        let net = NetModel::from_plan(&plan());
        assert!(net.disturbed(1_500.0));
        assert!(!net.disturbed(4_000.0));
        assert_eq!(net.last_window_end_us(), 11_000.0);
        let quiet = NetModel::from_plan(&FaultPlan::new(1));
        assert_eq!(quiet.last_window_end_us(), 0.0);
        assert!(!quiet.disturbed(0.0));
    }
}
