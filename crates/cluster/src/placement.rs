//! Consistent-hash placement.
//!
//! A [`HashRing`] maps stable `u64` keys onto a changing member set
//! with minimal movement: when a member leaves, only the keys it owned
//! are re-placed; when one joins, it takes over only the arcs it now
//! covers. Members are spread around the ring with `vnodes` virtual
//! points each, hashed through the SplitMix64 finalizer, so balance is
//! statistical but tight once `vnodes` is large enough. The serving
//! tier uses two rings: a static one mapping tenants onto shards, and
//! a membership-driven one mapping shards onto live nodes.

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over `u32` member ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    vnodes: u32,
    /// `(point_hash, member)`, sorted; ties broken by member id so
    /// collisions resolve deterministically.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// An empty ring spreading each member over `vnodes` virtual
    /// points (at least 1).
    pub fn new(vnodes: u32) -> HashRing {
        HashRing {
            vnodes: vnodes.max(1),
            points: Vec::new(),
        }
    }

    /// A ring pre-populated with `members`.
    pub fn with_members(vnodes: u32, members: impl IntoIterator<Item = u32>) -> HashRing {
        let mut ring = HashRing::new(vnodes);
        for m in members {
            ring.insert(m);
        }
        ring
    }

    fn point(member: u32, vnode: u32) -> u64 {
        mix64((u64::from(member) << 32) | u64::from(vnode))
    }

    /// Adds a member (idempotent).
    pub fn insert(&mut self, member: u32) {
        if self.contains(member) {
            return;
        }
        for v in 0..self.vnodes {
            let entry = (Self::point(member, v), member);
            let pos = self.points.partition_point(|p| *p <= entry);
            self.points.insert(pos, entry);
        }
    }

    /// Removes a member (idempotent).
    pub fn remove(&mut self, member: u32) {
        self.points.retain(|&(_, m)| m != member);
    }

    /// Whether `member` is on the ring.
    pub fn contains(&self, member: u32) -> bool {
        self.points.iter().any(|&(_, m)| m == member)
    }

    /// Number of members on the ring.
    pub fn len(&self) -> usize {
        self.points.len() / self.vnodes as usize
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The member owning `key`: the first virtual point at or past the
    /// key's hash, wrapping at the top. `None` on an empty ring.
    pub fn place(&self, key: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix64(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let idx = if idx == self.points.len() { 0 } else { idx };
        Some(self.points[idx].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = HashRing::with_members(64, 0..8);
        for key in 0..1_000u64 {
            let a = ring.place(key).expect("non-empty ring places");
            let b = ring.place(key).expect("non-empty ring places");
            assert_eq!(a, b);
            assert!(a < 8);
        }
        assert_eq!(HashRing::new(8).place(1), None);
    }

    #[test]
    fn insert_and_remove_are_idempotent() {
        let mut ring = HashRing::with_members(16, 0..4);
        let before = ring.clone();
        ring.insert(2);
        assert_eq!(ring, before);
        ring.remove(9);
        assert_eq!(ring, before);
        assert_eq!(ring.len(), 4);
        ring.remove(3);
        assert_eq!(ring.len(), 3);
        assert!(!ring.contains(3));
    }

    #[test]
    fn removal_moves_only_the_removed_members_keys() {
        let mut ring = HashRing::with_members(64, 0..6);
        let before: Vec<u32> = (0..2_000u64)
            .map(|k| ring.place(k).expect("placed"))
            .collect();
        ring.remove(4);
        for (k, &owner) in before.iter().enumerate() {
            let now = ring.place(k as u64).expect("placed");
            if owner != 4 {
                assert_eq!(now, owner, "key {k} moved without cause");
            } else {
                assert_ne!(now, 4, "key {k} still on the removed member");
            }
        }
    }
}
