//! Lease-based shard ownership with fencing epochs.
//!
//! Every shard is owned under a time-bounded lease. Renewal happens
//! once per cluster tick, but only while the coordinator holds the
//! owner fully `Alive` *and* a quorum exists — suspicion or quorum
//! loss starves the lease, and a starved lease lapses `ttl_us` after
//! its last renewal. A lapsed lease whose shard can be re-placed (a
//! quorum exists, or the degraded-mode escape hatch is open) fails
//! over: the global fencing epoch is bumped and the shard moves to the
//! consistent-hash pick among the live nodes — minimal movement, since
//! only the lapsed shard is touched. The epoch is stamped on every
//! dispatch, so work from before a failover is recognizably stale
//! after the partition heals: split-brain double dispatch cannot
//! survive the fence.

use crate::placement::HashRing;

/// Lease timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaseConfig {
    /// How long a grant lasts without renewal, in virtual µs.
    pub ttl_us: f64,
}

impl Default for LeaseConfig {
    fn default() -> LeaseConfig {
        LeaseConfig { ttl_us: 2_500.0 }
    }
}

/// One shard's current grant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardLease {
    /// Owning node.
    pub owner: usize,
    /// Fencing epoch at grant time.
    pub epoch: u64,
    /// Lapse instant unless renewed.
    pub expires_us: f64,
}

/// One ownership transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Failover {
    /// The shard that moved.
    pub shard: u32,
    /// Previous owner.
    pub from: usize,
    /// New owner.
    pub to: usize,
    /// Fencing epoch of the new grant.
    pub epoch: u64,
    /// Whether the grant was made in degraded (quorum-less) mode.
    pub degraded: bool,
}

/// Lease counters, exposed for traces and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Successful renewals.
    pub renewals: u64,
    /// Ownership transfers.
    pub failovers: u64,
    /// Grants made through the degraded-mode escape hatch.
    pub degraded_grants: u64,
}

/// The lease table for a fixed shard count.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    cfg: LeaseConfig,
    leases: Vec<ShardLease>,
    fencing_epoch: u64,
    /// Counters.
    pub stats: LeaseStats,
}

impl LeaseTable {
    /// Grants every shard its initial lease from `ring` (the full
    /// healthy membership) at epoch 0, expiring one TTL out.
    pub fn new(cfg: LeaseConfig, shards: u32, ring: &HashRing) -> LeaseTable {
        let leases = (0..shards)
            .map(|shard| ShardLease {
                owner: ring.place(shard_key(shard)).unwrap_or(0) as usize,
                epoch: 0,
                expires_us: cfg.ttl_us,
            })
            .collect();
        LeaseTable {
            cfg,
            leases,
            fencing_epoch: 0,
            stats: LeaseStats::default(),
        }
    }

    /// The global fencing epoch: bumped once per failover.
    pub fn fencing_epoch(&self) -> u64 {
        self.fencing_epoch
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.leases.len() as u32
    }

    /// The live grant for `shard` at `now_us`, or `None` once lapsed.
    pub fn owner(&self, shard: u32, now_us: f64) -> Option<(usize, u64)> {
        let lease = self.leases.get(shard as usize)?;
        (now_us < lease.expires_us).then_some((lease.owner, lease.epoch))
    }

    /// One renewal/failover pass. `alive` is the coordinator-view set
    /// of fully-`Alive` nodes (sorted), `ring` the consistent-hash
    /// ring over exactly that set, `quorum` whether the coordinator's
    /// component is a strict majority, and `degraded` whether the
    /// no-quorum grace has run out and grants may proceed anyway.
    pub fn tick(
        &mut self,
        now_us: f64,
        alive: &[usize],
        quorum: bool,
        degraded: bool,
        ring: &HashRing,
    ) -> Vec<Failover> {
        let mut moved = Vec::new();
        for (shard, lease) in self.leases.iter_mut().enumerate() {
            let owner_alive = alive.binary_search(&lease.owner).is_ok();
            if owner_alive && (quorum || degraded) {
                if degraded && !quorum && now_us >= lease.expires_us {
                    // Re-granting a *lapsed* lease outside quorum is a
                    // fresh claim, not a renewal: re-fence it so any
                    // work dispatched under the old grant is
                    // recognizably stale after the partition heals.
                    self.fencing_epoch += 1;
                    lease.epoch = self.fencing_epoch;
                    self.stats.degraded_grants += 1;
                }
                lease.expires_us = now_us + self.cfg.ttl_us;
                self.stats.renewals += 1;
                continue;
            }
            if now_us < lease.expires_us || !(quorum || degraded) || ring.is_empty() {
                // Either the old grant still fences the shard, or no
                // component is authorized to re-grant it: the shard
                // stays (or goes) unowned and its tenants shed typed.
                continue;
            }
            let to = ring
                .place(shard_key(shard as u32))
                .map(|m| m as usize)
                .unwrap_or(lease.owner);
            self.fencing_epoch += 1;
            self.stats.failovers += 1;
            if degraded && !quorum {
                self.stats.degraded_grants += 1;
            }
            moved.push(Failover {
                shard: shard as u32,
                from: lease.owner,
                to,
                epoch: self.fencing_epoch,
                degraded: degraded && !quorum,
            });
            *lease = ShardLease {
                owner: to,
                epoch: self.fencing_epoch,
                expires_us: now_us + self.cfg.ttl_us,
            };
        }
        moved
    }
}

/// The stable hash key a shard occupies on the node ring.
pub fn shard_key(shard: u32) -> u64 {
    0x5A4D_0000_0000_0000 | u64::from(shard)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_ring(nodes: usize) -> HashRing {
        HashRing::with_members(64, (0..nodes as u32).collect::<Vec<_>>())
    }

    #[test]
    fn renewal_keeps_owners_and_epoch_stable() {
        let ring = full_ring(4);
        let mut table = LeaseTable::new(LeaseConfig::default(), 16, &ring);
        let owners: Vec<usize> = (0..16)
            .map(|s| table.owner(s, 0.0).expect("granted").0)
            .collect();
        let alive = [0usize, 1, 2, 3];
        for round in 1..=10 {
            let moved = table.tick(round as f64 * 1_000.0, &alive, true, false, &ring);
            assert!(moved.is_empty(), "healthy renewals never move shards");
        }
        for s in 0..16 {
            let (owner, epoch) = table.owner(s, 10_000.0).expect("still granted");
            assert_eq!(owner, owners[s as usize]);
            assert_eq!(epoch, 0);
        }
        assert_eq!(table.fencing_epoch(), 0);
    }

    #[test]
    fn starved_lease_lapses_then_fails_over_with_epoch_bump() {
        let mut table = LeaseTable::new(LeaseConfig::default(), 16, &full_ring(4));
        let dead_owner = table.owner(0, 0.0).expect("granted").0;
        let alive: Vec<usize> = (0..4).filter(|n| *n != dead_owner).collect();
        let mut ring = full_ring(4);
        ring.remove(dead_owner as u32);
        // Before the TTL, the old grant still fences its shards.
        let moved = table.tick(1_000.0, &alive, true, false, &ring);
        assert!(moved.is_empty(), "old grants fence until they lapse");
        // Past the TTL the lapsed shards fail over; the rest renewed.
        let moved = table.tick(3_000.0, &alive, true, false, &ring);
        assert!(!moved.is_empty(), "lapsed shards must move");
        for f in &moved {
            assert_eq!(f.from, dead_owner);
            assert_ne!(f.to, dead_owner);
            assert!(!f.degraded);
            assert!(f.epoch > 0, "every failover bumps the fence");
        }
        let epochs: Vec<u64> = moved.iter().map(|f| f.epoch).collect();
        let mut sorted = epochs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), epochs.len(), "epochs are unique per transfer");
        // Only the dead owner's shards moved: minimal movement.
        let survivors_kept = (0..16)
            .filter(|&s| {
                let (owner, epoch) = table.owner(s, 3_500.0).expect("granted");
                epoch == 0 && owner != dead_owner
            })
            .count();
        assert_eq!(survivors_kept + moved.len(), 16);
    }

    #[test]
    fn no_quorum_starves_until_degraded_mode_opens() {
        let ring = full_ring(4);
        let mut table = LeaseTable::new(LeaseConfig::default(), 8, &ring);
        let alive = [0usize, 1];
        // 2 of 4 is no quorum: nothing renews, everything lapses.
        let moved = table.tick(1_000.0, &alive, false, false, &ring);
        assert!(moved.is_empty());
        assert_eq!(table.owner(0, 4_000.0), None, "starved grant lapses");
        let moved = table.tick(5_000.0, &alive, false, false, &ring);
        assert!(moved.is_empty(), "no quorum, no grants");
        // The escape hatch: degraded grants restore availability —
        // lapsed shards of dead owners fail over, lapsed shards of
        // surviving owners are re-fenced in place. Either way the
        // epoch moves and the grant is counted as degraded.
        let half = HashRing::with_members(64, [0u32, 1]);
        let moved = table.tick(6_000.0, &alive, false, true, &half);
        assert!(!moved.is_empty(), "dead owners' shards must move");
        assert!(moved.iter().all(|f| f.degraded && f.to <= 1));
        assert_eq!(table.stats.degraded_grants, 8, "every shard re-fenced");
        for s in 0..8 {
            let (owner, epoch) = table.owner(s, 6_500.0).expect("granted");
            assert!(owner <= 1);
            assert!(epoch > 0, "degraded grants never keep the old fence");
        }
    }
}
