//! # everest-cluster
//!
//! Deterministic cluster membership and shard failover for the EVEREST
//! SDK reproduction.
//!
//! The paper's target is a multi-node FPGA cluster; at that scale the
//! dominant failures are not device errors but *network* ones —
//! partitions, asymmetric reachability, delay and loss. This crate
//! supplies the membership layer the serving tier stands on, with the
//! same byte-stable replay guarantee as everything else in the stack:
//!
//! * [`NetModel`] — ground-truth connectivity compiled from the
//!   network [`FaultKind`](everest_faults::FaultKind)s in a
//!   [`everest_faults::FaultPlan`];
//! * [`SwimDetector`] — a SWIM-style gossip failure detector on the
//!   shared virtual clock: seeded probe targets, suspect→confirm
//!   timeouts, incarnation-number refutation;
//! * [`HashRing`] — consistent-hash placement with virtual nodes
//!   (tenants onto shards, shards onto live nodes), minimal movement
//!   on membership change;
//! * [`LeaseTable`] — time-bounded shard ownership renewed only from a
//!   quorum component, with a global fencing epoch bumped on every
//!   failover so stale pre-partition work is recognizable after heal;
//! * [`ClusterController`] — the per-campaign composition the serve
//!   engine ticks once per gossip round.
//!
//! The CP stance: while no strict majority component exists, leases
//! starve and requests shed with a typed reason rather than risk
//! split-brain. Liveness is still guaranteed by a bounded escape
//! hatch — after `no_quorum_grace_us` without quorum, the largest
//! surviving component proceeds in *degraded* mode (counted, flagged
//! in traces). The full protocol is documented in `docs/RESILIENCE.md`.

#![warn(clippy::unwrap_used)]

pub mod lease;
pub mod membership;
pub mod net;
pub mod placement;

pub use lease::{Failover, LeaseConfig, LeaseStats, LeaseTable, ShardLease};
pub use membership::{MemberState, MembershipConfig, SwimDetector, SwimStats};
pub use net::NetModel;
pub use placement::HashRing;

use everest_faults::FaultPlan;

/// Everything the membership/failover layer needs to run one campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of ownership shards tenants hash onto.
    pub shards: u32,
    /// Virtual points per member on both rings.
    pub vnodes: u32,
    /// Gossip cadence and timeouts.
    pub membership: MembershipConfig,
    /// Lease TTL.
    pub lease: LeaseConfig,
    /// How long total quorum loss is tolerated before the largest
    /// component proceeds in degraded mode.
    pub no_quorum_grace_us: f64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 16,
            vnodes: 64,
            membership: MembershipConfig::default(),
            lease: LeaseConfig::default(),
            no_quorum_grace_us: 25_000.0,
        }
    }
}

/// What one cluster tick decided.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterTick {
    /// Nodes newly confirmed dead in the coordinator's view.
    pub newly_dead: Vec<usize>,
    /// Nodes newly back from the dead in the coordinator's view.
    pub revived: Vec<usize>,
    /// Shard ownership transfers granted this tick.
    pub failovers: Vec<Failover>,
    /// Whether a strict-majority component exists.
    pub quorum: bool,
    /// Whether grants are flowing through the degraded escape hatch.
    pub degraded: bool,
}

/// The per-campaign composition: detector + rings + leases.
#[derive(Debug, Clone)]
pub struct ClusterController {
    cfg: ClusterConfig,
    nodes: usize,
    net: NetModel,
    swim: SwimDetector,
    /// Static ring mapping tenant keys onto shard ids.
    tenant_ring: HashRing,
    leases: LeaseTable,
    coordinator: usize,
    quorum: bool,
    degraded: bool,
    quorum_lost_since_us: Option<f64>,
    /// Coordinator-view state per node, refreshed each tick.
    dead: Vec<bool>,
    dispatchable: Vec<bool>,
}

impl ClusterController {
    /// Builds the layer for `nodes` nodes against `plan`'s network
    /// windows, every shard initially placed over the full membership.
    pub fn new(cfg: ClusterConfig, nodes: usize, plan: &FaultPlan) -> ClusterController {
        let node_ring = HashRing::with_members(cfg.vnodes, 0..nodes as u32);
        ClusterController {
            net: NetModel::from_plan(plan),
            swim: SwimDetector::new(cfg.membership, nodes, plan.seed),
            tenant_ring: HashRing::with_members(cfg.vnodes, 0..cfg.shards),
            leases: LeaseTable::new(cfg.lease, cfg.shards, &node_ring),
            coordinator: 0,
            quorum: true,
            degraded: false,
            quorum_lost_since_us: None,
            dead: vec![false; nodes],
            dispatchable: vec![true; nodes],
            cfg,
            nodes,
        }
    }

    /// The gossip round period, which is also the tick cadence.
    pub fn period_us(&self) -> f64 {
        self.cfg.membership.period_us
    }

    /// Runs one gossip round + lease pass at `now_us`. `crashed` is
    /// ground truth (fail-stop nodes neither probe nor answer); every
    /// other belief comes off the simulated wire.
    pub fn tick(&mut self, now_us: f64, crashed: &[bool]) -> ClusterTick {
        self.swim.tick(now_us, &mut self.net, crashed);
        let mut tick = ClusterTick::default();
        // The router colocates with the coordinator: the live node
        // seeing the most fully-`Alive` peers (ties: lowest index).
        // Counting `Alive` rather than non-dead matters during the
        // suspicion window — a cut node suspects the whole majority
        // within a round or two, so its shrinking view can never win
        // the election and steal shards onto the minority side.
        let Some(coordinator) = (0..self.nodes)
            .filter(|&n| !crashed[n])
            .max_by_key(|&n| (self.swim.alive_count(n), usize::MAX - n))
        else {
            // Every node fail-stopped: nothing to coordinate.
            self.dispatchable.iter_mut().for_each(|d| *d = false);
            return tick;
        };
        self.coordinator = coordinator;
        self.quorum = 2 * self.swim.non_dead_count(coordinator) > self.nodes;
        if self.quorum {
            self.quorum_lost_since_us = None;
            self.degraded = false;
        } else {
            let since = *self.quorum_lost_since_us.get_or_insert(now_us);
            self.degraded = now_us - since >= self.cfg.no_quorum_grace_us;
        }
        tick.quorum = self.quorum;
        tick.degraded = self.degraded;
        // Coordinator-view refresh: who is dead, who may take work.
        let granting = self.quorum || self.degraded;
        let mut alive = Vec::with_capacity(self.nodes);
        for (n, n_crashed) in crashed.iter().enumerate().take(self.nodes) {
            let state = self.swim.state(coordinator, n);
            let dead_now = state == MemberState::Dead;
            if dead_now && !self.dead[n] {
                tick.newly_dead.push(n);
            }
            if !dead_now && self.dead[n] {
                tick.revived.push(n);
            }
            self.dead[n] = dead_now;
            let fully_alive = state == MemberState::Alive && !*n_crashed;
            self.dispatchable[n] = fully_alive && granting;
            if fully_alive {
                alive.push(n);
            }
        }
        let node_ring = HashRing::with_members(self.cfg.vnodes, alive.iter().map(|&n| n as u32));
        tick.failovers = self
            .leases
            .tick(now_us, &alive, self.quorum, self.degraded, &node_ring);
        tick
    }

    /// The shard `tenant` hashes onto.
    pub fn shard_of_tenant(&self, tenant: usize) -> u32 {
        self.tenant_ring
            .place(0x7E4A_0000_0000_0000 | tenant as u64)
            .unwrap_or(0)
    }

    /// The live `(owner, epoch)` grant covering `tenant`'s shard at
    /// `now_us`, or `None` when the lease has lapsed (the door sheds
    /// such requests with a typed reason).
    pub fn tenant_owner(&self, tenant: usize, now_us: f64) -> Option<(usize, u64)> {
        self.leases.owner(self.shard_of_tenant(tenant), now_us)
    }

    /// Whether the coordinator will route new work to `node`: fully
    /// `Alive` in the coordinator's view, not crashed, and grants are
    /// flowing (quorum or degraded mode).
    pub fn dispatchable(&self, node: usize) -> bool {
        self.dispatchable[node]
    }

    /// Whether `node` is confirmed dead in the coordinator's view.
    pub fn confirmed_dead(&self, node: usize) -> bool {
        self.dead[node]
    }

    /// The node currently acting as coordinator.
    pub fn coordinator(&self) -> usize {
        self.coordinator
    }

    /// Whether a strict-majority component exists (as of last tick).
    pub fn quorum(&self) -> bool {
        self.quorum
    }

    /// The global fencing epoch (bumped once per failover).
    pub fn fencing_epoch(&self) -> u64 {
        self.leases.fencing_epoch()
    }

    /// Detector counters.
    pub fn swim_stats(&self) -> SwimStats {
        self.swim.stats
    }

    /// Lease counters.
    pub fn lease_stats(&self) -> LeaseStats {
        self.leases.stats
    }

    /// Whether any network window is still open at or after `now_us` —
    /// once false, connectivity is permanently healed.
    pub fn network_active_after(&self, now_us: f64) -> bool {
        self.net.last_window_end_us() > now_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_faults::{FaultKind, FaultSpec};

    fn run_ticks(
        ctl: &mut ClusterController,
        crashed: &[bool],
        from_us: f64,
        rounds: usize,
    ) -> (f64, Vec<ClusterTick>) {
        let mut now = from_us;
        let mut ticks = Vec::new();
        for _ in 0..rounds {
            now += ctl.period_us();
            ticks.push(ctl.tick(now, crashed));
        }
        (now, ticks)
    }

    #[test]
    fn healthy_cluster_grants_everywhere() {
        let plan = FaultPlan::new(3);
        let mut ctl = ClusterController::new(ClusterConfig::default(), 4, &plan);
        let (now, ticks) = run_ticks(&mut ctl, &[false; 4], 0.0, 10);
        assert!(ticks.iter().all(|t| t.quorum && !t.degraded));
        assert!(ticks.iter().all(|t| t.failovers.is_empty()));
        for node in 0..4 {
            assert!(ctl.dispatchable(node));
        }
        for tenant in 0..32 {
            assert!(ctl.tenant_owner(tenant, now).is_some());
        }
        assert_eq!(ctl.fencing_epoch(), 0);
    }

    #[test]
    fn minority_partition_fails_over_and_heals() {
        // Node 0 cut off for 30ms of a healthy 4-node cluster.
        let plan = FaultPlan::new(7).with_fault(FaultSpec::new(
            2_000.0,
            0,
            FaultKind::PartitionSym {
                group: 0b0001,
                duration_us: 30_000.0,
            },
        ));
        let mut ctl = ClusterController::new(ClusterConfig::default(), 4, &plan);
        let (mid, ticks) = run_ticks(&mut ctl, &[false; 4], 0.0, 12);
        let confirmed: Vec<usize> = ticks.iter().flat_map(|t| t.newly_dead.clone()).collect();
        assert!(confirmed.contains(&0), "the cut node must be confirmed");
        assert!(ctl.quorum(), "3 of 4 keep quorum");
        assert!(!ctl.dispatchable(0));
        let moved: Vec<Failover> = ticks.iter().flat_map(|t| t.failovers.clone()).collect();
        assert!(
            moved
                .iter()
                .all(|f| f.from == 0 && f.to != 0 && !f.degraded),
            "only the cut node's shards move, inside the quorum"
        );
        assert!(ctl.fencing_epoch() > 0, "failover bumps the fence");
        // Every tenant is re-covered by a live grant.
        for tenant in 0..32 {
            let (owner, _) = ctl.tenant_owner(tenant, mid).expect("covered");
            assert_ne!(owner, 0);
        }
        // Heal: run far past the window, node 0 revives and serves.
        let (_, ticks) = run_ticks(&mut ctl, &[false; 4], 40_000.0, 40);
        assert!(
            ticks.iter().any(|t| t.revived.contains(&0)),
            "the healed node must revive"
        );
        assert!(ctl.dispatchable(0));
        let epoch_after_heal = ctl.fencing_epoch();
        let (_, quiet) = run_ticks(&mut ctl, &[false; 4], 90_000.0, 10);
        assert!(quiet.iter().all(|t| t.failovers.is_empty()));
        assert_eq!(
            ctl.fencing_epoch(),
            epoch_after_heal,
            "leases are sticky: no failback churn after heal"
        );
    }

    #[test]
    fn even_split_starves_then_degrades() {
        let cfg = ClusterConfig {
            no_quorum_grace_us: 10_000.0,
            ..ClusterConfig::default()
        };
        let plan = FaultPlan::new(5).with_fault(FaultSpec::new(
            1_000.0,
            0,
            FaultKind::PartitionSym {
                group: 0b0011,
                duration_us: 1e9,
            },
        ));
        let mut ctl = ClusterController::new(cfg, 4, &plan);
        let (now, _) = run_ticks(&mut ctl, &[false; 4], 0.0, 12);
        assert!(!ctl.quorum(), "a 2-2 split has no majority");
        assert!(
            (0..4).all(|n| !ctl.dispatchable(n)),
            "CP stance: no quorum, no dispatch"
        );
        assert!(
            (0..32).all(|t| ctl.tenant_owner(t, now).is_none()),
            "every lease starves without quorum"
        );
        // Grace runs out: the largest component proceeds degraded,
        // re-fencing the lapsed grants it can cover.
        let (now, ticks) = run_ticks(&mut ctl, &[false; 4], now, 8);
        assert!(ticks.iter().any(|t| t.degraded));
        assert!(ctl.lease_stats().degraded_grants > 0);
        assert!(
            (0..32).all(|t| ctl.tenant_owner(t, now).is_some()),
            "degraded mode restores coverage"
        );
        assert!(
            (0..4).filter(|&n| ctl.dispatchable(n)).count() == 2,
            "only the surviving component takes work"
        );
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = || {
            let plan = FaultPlan::random_partition_campaign(42, 4, 60_000.0, 2);
            let mut ctl = ClusterController::new(ClusterConfig::default(), 4, &plan);
            let mut crashed = [false; 4];
            let mut log = Vec::new();
            for round in 1..=60 {
                if round == 30 {
                    crashed[3] = true;
                }
                log.push(ctl.tick(round as f64 * 1_000.0, &crashed));
            }
            (
                log,
                ctl.fencing_epoch(),
                ctl.swim_stats(),
                ctl.lease_stats(),
            )
        };
        assert_eq!(run(), run());
    }
}
