//! SWIM-style gossip failure detection on the virtual clock.
//!
//! Each node keeps its own view of every other node — `Alive`,
//! `Suspect` or `Dead`, each at an incarnation number. Once per gossip
//! round every live node probes one seeded target; a successful probe
//! is a full round trip plus an anti-entropy view merge in both
//! directions, so information (and suspicion) spreads epidemically. A
//! failed probe marks the target `Suspect`; a suspicion older than the
//! suspect timeout hardens into `Dead` (the confirm). A reachable node
//! that learns it is suspected or declared dead refutes by bumping its
//! incarnation — `Alive` at a higher incarnation overrides anything at
//! a lower one, which is also how a healed partition revives the
//! minority side. Everything (probe targets, merge order) derives from
//! the plan seed and virtual time, so campaigns replay byte-identically.

use everest_faults::DetRng;

use crate::net::NetModel;

/// Gossip cadence and timeouts, in virtual µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipConfig {
    /// Gossip round period.
    pub period_us: f64,
    /// Probe round-trip budget; longer delays read as failures.
    pub probe_timeout_us: f64,
    /// How long a suspicion is held before it hardens into `Dead`.
    pub suspect_timeout_us: f64,
}

impl Default for MembershipConfig {
    fn default() -> MembershipConfig {
        MembershipConfig {
            period_us: 1_000.0,
            probe_timeout_us: 400.0,
            suspect_timeout_us: 3_000.0,
        }
    }
}

/// One observer's belief about one subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemberState {
    /// Believed healthy. (Ordering: later states override earlier ones
    /// at equal incarnation.)
    Alive,
    /// A probe failed; the suspicion clock is running.
    Suspect,
    /// Suspicion outlived the timeout: confirmed failed.
    Dead,
}

#[derive(Debug, Clone, Copy)]
struct ViewEntry {
    state: MemberState,
    incarnation: u64,
    /// When the current state was adopted (drives the suspect timeout).
    since_us: f64,
}

/// Aggregate detector counters across all observers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwimStats {
    /// Gossip rounds executed.
    pub rounds: u64,
    /// Probes attempted.
    pub probes: u64,
    /// Probes that failed (cut, delayed past timeout, lost, or dead).
    pub probe_failures: u64,
    /// Alive→Suspect transitions across all views.
    pub suspects: u64,
    /// Suspect→Dead hardenings across all views.
    pub confirms: u64,
    /// Incarnation bumps refuting a suspicion or death.
    pub refutations: u64,
}

/// The N×N failure detector.
#[derive(Debug, Clone)]
pub struct SwimDetector {
    cfg: MembershipConfig,
    n: usize,
    /// `views[observer][subject]`.
    views: Vec<Vec<ViewEntry>>,
    /// Each node's own incarnation number.
    incarnation: Vec<u64>,
    rng: DetRng,
    /// Counters, exposed for traces and telemetry.
    pub stats: SwimStats,
}

impl SwimDetector {
    /// A detector over `n` nodes, all mutually `Alive` at incarnation
    /// 0, drawing probe targets from a stream forked off `seed`.
    pub fn new(cfg: MembershipConfig, n: usize, seed: u64) -> SwimDetector {
        let entry = ViewEntry {
            state: MemberState::Alive,
            incarnation: 0,
            since_us: 0.0,
        };
        SwimDetector {
            cfg,
            n,
            views: vec![vec![entry; n]; n],
            incarnation: vec![0; n],
            rng: DetRng::new(seed).fork(0x5717B0),
            stats: SwimStats::default(),
        }
    }

    /// The membership configuration in force.
    pub fn config(&self) -> MembershipConfig {
        self.cfg
    }

    /// Observer `o`'s belief about subject `s`.
    pub fn state(&self, observer: usize, subject: usize) -> MemberState {
        self.views[observer][subject].state
    }

    /// The subjects observer `o` does not hold `Dead` (includes `o`).
    pub fn non_dead_count(&self, observer: usize) -> usize {
        self.views[observer]
            .iter()
            .filter(|e| e.state != MemberState::Dead)
            .count()
    }

    /// The subjects observer `o` holds fully `Alive` (includes `o`).
    pub fn alive_count(&self, observer: usize) -> usize {
        self.views[observer]
            .iter()
            .filter(|e| e.state == MemberState::Alive)
            .count()
    }

    fn set(&mut self, observer: usize, subject: usize, state: MemberState, inc: u64, now_us: f64) {
        let entry = &mut self.views[observer][subject];
        if entry.state != state || entry.incarnation != inc {
            *entry = ViewEntry {
                state,
                incarnation: inc,
                since_us: now_us,
            };
        }
    }

    /// SWIM precedence: higher incarnation wins outright; at equal
    /// incarnation the more severe state wins.
    fn merge_entry(ours: &mut ViewEntry, theirs: ViewEntry) -> bool {
        let wins = theirs.incarnation > ours.incarnation
            || (theirs.incarnation == ours.incarnation && theirs.state > ours.state);
        if wins {
            *ours = theirs;
        }
        wins
    }

    /// Merges `src`'s whole view into `dst`'s (anti-entropy).
    fn merge_views(&mut self, dst: usize, src: usize) {
        for subject in 0..self.n {
            let theirs = self.views[src][subject];
            Self::merge_entry(&mut self.views[dst][subject], theirs);
        }
    }

    /// If `node` has absorbed a suspicion or death of itself, it
    /// refutes: bump the incarnation past the accusation and re-assert
    /// `Alive`.
    fn refute_self(&mut self, node: usize, now_us: f64) {
        let own = self.views[node][node];
        if own.state != MemberState::Alive {
            let inc = own.incarnation + 1;
            self.incarnation[node] = self.incarnation[node].max(inc);
            self.set(
                node,
                node,
                MemberState::Alive,
                self.incarnation[node],
                now_us,
            );
            self.stats.refutations += 1;
        }
    }

    /// Runs one gossip round at `now_us`. Ground-truth crashed nodes
    /// neither probe nor answer; the detector has no other access to
    /// ground truth — everything else it believes comes off the wire.
    pub fn tick(&mut self, now_us: f64, net: &mut NetModel, crashed: &[bool]) {
        self.stats.rounds += 1;
        // 1. Harden expired suspicions into confirms, per observer.
        for (o, o_crashed) in crashed.iter().enumerate().take(self.n) {
            if *o_crashed {
                continue;
            }
            for s in 0..self.n {
                let e = self.views[o][s];
                if e.state == MemberState::Suspect
                    && now_us - e.since_us >= self.cfg.suspect_timeout_us
                {
                    self.set(o, s, MemberState::Dead, e.incarnation, now_us);
                    self.stats.confirms += 1;
                }
            }
        }
        // 2. One seeded probe per live observer.
        for o in 0..self.n {
            if crashed[o] || self.n < 2 {
                continue;
            }
            let mut t = self.rng.index(self.n - 1);
            if t >= o {
                t += 1;
            }
            self.stats.probes += 1;
            let ok = !crashed[t] && net.probe_ok(o, t, now_us, self.cfg.probe_timeout_us);
            if ok {
                // Full round trip: exchange views both ways, let each
                // side refute anything it learned about itself, then
                // record the direct contact as fresh evidence of life.
                self.merge_views(o, t);
                self.merge_views(t, o);
                self.refute_self(o, now_us);
                self.refute_self(t, now_us);
                let (inc_o, inc_t) = (self.incarnation[o], self.incarnation[t]);
                self.set(o, t, MemberState::Alive, inc_t, now_us);
                self.set(t, o, MemberState::Alive, inc_o, now_us);
            } else {
                self.stats.probe_failures += 1;
                let e = self.views[o][t];
                if e.state == MemberState::Alive {
                    self.set(o, t, MemberState::Suspect, e.incarnation, now_us);
                    self.stats.suspects += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_faults::{FaultKind, FaultPlan, FaultSpec};

    fn quiet_net() -> NetModel {
        NetModel::from_plan(&FaultPlan::new(5))
    }

    fn run_rounds(
        swim: &mut SwimDetector,
        net: &mut NetModel,
        crashed: &[bool],
        from_us: f64,
        rounds: usize,
    ) -> f64 {
        let period = swim.config().period_us;
        let mut now = from_us;
        for _ in 0..rounds {
            now += period;
            swim.tick(now, net, crashed);
        }
        now
    }

    #[test]
    fn healthy_cluster_stays_alive() {
        let mut swim = SwimDetector::new(MembershipConfig::default(), 4, 7);
        let mut net = quiet_net();
        run_rounds(&mut swim, &mut net, &[false; 4], 0.0, 20);
        for o in 0..4 {
            for s in 0..4 {
                assert_eq!(swim.state(o, s), MemberState::Alive);
            }
        }
        assert_eq!(swim.stats.suspects, 0);
        assert_eq!(swim.stats.probe_failures, 0);
    }

    #[test]
    fn crash_is_suspected_then_confirmed_by_everyone() {
        let mut swim = SwimDetector::new(MembershipConfig::default(), 4, 7);
        let mut net = quiet_net();
        let crashed = [false, false, true, false];
        run_rounds(&mut swim, &mut net, &crashed, 0.0, 40);
        for o in [0, 1, 3] {
            assert_eq!(
                swim.state(o, 2),
                MemberState::Dead,
                "observer {o} must confirm the crash"
            );
            assert_eq!(swim.non_dead_count(o), 3);
        }
        assert!(swim.stats.suspects >= 1);
        // At least one observer hardens the suspicion locally; the
        // rest may learn the death by gossip (merged `Dead` entries
        // are not re-counted as confirms).
        assert!(swim.stats.confirms >= 1);
    }

    #[test]
    fn partition_confirms_then_heals_with_refutation() {
        let plan = FaultPlan::new(9).with_fault(FaultSpec::new(
            1_000.0,
            0,
            FaultKind::PartitionSym {
                group: 0b0001,
                duration_us: 30_000.0,
            },
        ));
        let mut net = NetModel::from_plan(&plan);
        let mut swim = SwimDetector::new(MembershipConfig::default(), 4, 9);
        let crashed = [false; 4];
        // Deep into the partition: both sides confirm each other dead.
        let now = run_rounds(&mut swim, &mut net, &crashed, 0.0, 25);
        for o in [1, 2, 3] {
            assert_eq!(swim.state(o, 0), MemberState::Dead, "majority confirms 0");
        }
        assert!(
            (1..4).any(|s| swim.state(0, s) == MemberState::Dead),
            "the cut node confirms at least part of the majority dead"
        );
        // Well past the heal: direct probes revive both directions.
        run_rounds(&mut swim, &mut net, &crashed, now.max(30_000.0), 60);
        for o in 0..4 {
            for s in 0..4 {
                assert_eq!(
                    swim.state(o, s),
                    MemberState::Alive,
                    "{o}'s view of {s} must heal"
                );
            }
        }
        assert!(
            swim.stats.refutations >= 1,
            "revival goes through refutation"
        );
    }

    #[test]
    fn same_seed_replays_identically() {
        let run = || {
            let mut swim = SwimDetector::new(MembershipConfig::default(), 5, 21);
            let mut net = quiet_net();
            run_rounds(
                &mut swim,
                &mut net,
                &[false, true, false, false, false],
                0.0,
                30,
            );
            swim.stats
        };
        assert_eq!(run(), run());
    }
}
