//! Property tests for consistent-hash placement: the balance and
//! minimal-movement guarantees `docs/RESILIENCE.md` promises for
//! tenant→shard and shard→node placement must hold for arbitrary
//! member counts and key populations.

use proptest::prelude::*;

use everest_cluster::HashRing;

const KEYS: u64 = 20_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a) Balance: with 16+ members at 128 virtual points each, no
    /// member's share of a large key population strays past 2x the
    /// mean (nor below 0.25x) — the bound the serving tier sizes its
    /// shard count against.
    #[test]
    fn balance_within_bound(members in 16u32..49, salt in any::<u64>()) {
        let ring = HashRing::with_members(128, 0..members);
        let mut counts = vec![0u64; members as usize];
        for k in 0..KEYS {
            let owner = ring.place(salt ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .expect("non-empty ring always places");
            counts[owner as usize] += 1;
        }
        let mean = KEYS as f64 / members as f64;
        for (member, &count) in counts.iter().enumerate() {
            prop_assert!(
                (count as f64) <= 2.0 * mean,
                "member {member} of {members} owns {count} keys, mean {mean:.0}"
            );
            prop_assert!(
                (count as f64) >= 0.25 * mean,
                "member {member} of {members} starved at {count} keys, mean {mean:.0}"
            );
        }
    }

    /// (b) Minimal movement: removing one member re-places only the
    /// keys it owned, and every one of them lands on a survivor.
    /// Everything else stays put — the property shard failover leans
    /// on to keep re-placement churn proportional to the loss.
    #[test]
    fn removal_moves_only_the_removed_members_keys(
        members in 16u32..33,
        victim_pick in any::<u32>(),
        salt in any::<u64>(),
    ) {
        let mut ring = HashRing::with_members(128, 0..members);
        let victim = victim_pick % members;
        let key = |k: u64| salt ^ (k.wrapping_mul(0xD134_2543_DE82_EF95));
        let before: Vec<u32> = (0..KEYS)
            .map(|k| ring.place(key(k)).expect("placed"))
            .collect();
        ring.remove(victim);
        let mut moved = 0u64;
        for (k, &owner) in before.iter().enumerate() {
            let now = ring.place(key(k as u64)).expect("placed");
            if owner == victim {
                moved += 1;
                prop_assert!(now != victim, "key {k} still on the removed member");
            } else {
                prop_assert!(
                    now == owner,
                    "key {k} moved {owner} -> {now} though its owner survived"
                );
            }
        }
        // The victim owned roughly a mean share; all of it moved.
        let mean = KEYS as f64 / members as f64;
        prop_assert!((moved as f64) <= 2.0 * mean);
        // Re-adding the member restores the exact pre-removal map.
        ring.insert(victim);
        for (k, &owner) in before.iter().enumerate() {
            prop_assert!(ring.place(key(k as u64)) == Some(owner));
        }
    }
}
