//! Heartbeat watchdogs with deterministic deadlines on the virtual
//! clock: a node that stops producing completions past its timeout is
//! reported, even if nothing it ran ever raised an error.

/// Per-node heartbeat tracking. Every completion on a node beats its
/// heart; a node whose last beat is older than `timeout_us` at the
/// current virtual time has *expired*.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatWatchdog {
    timeout_us: f64,
    last_beat_us: Vec<f64>,
}

impl HeartbeatWatchdog {
    /// A watchdog over `nodes` nodes, all hearts beating at t = 0.
    pub fn new(nodes: usize, timeout_us: f64) -> HeartbeatWatchdog {
        HeartbeatWatchdog {
            timeout_us,
            last_beat_us: vec![0.0; nodes],
        }
    }

    /// The configured timeout, in virtual µs.
    pub fn timeout_us(&self) -> f64 {
        self.timeout_us
    }

    /// Records a completion on `node` at `at_us`. Beats never move the
    /// clock backwards.
    pub fn beat(&mut self, node: usize, at_us: f64) {
        if let Some(last) = self.last_beat_us.get_mut(node) {
            if at_us > *last {
                *last = at_us;
            }
        }
    }

    /// The deterministic deadline for `node`: last beat + timeout.
    pub fn deadline_us(&self, node: usize) -> f64 {
        self.last_beat_us.get(node).copied().unwrap_or(0.0) + self.timeout_us
    }

    /// Whether `node`'s heartbeat has expired at `now_us`.
    pub fn expired(&self, node: usize, now_us: f64) -> bool {
        now_us > self.deadline_us(node)
    }

    /// How long past the deadline `node` is at `now_us` (0 when not
    /// expired).
    pub fn overdue_us(&self, node: usize, now_us: f64) -> f64 {
        (now_us - self.deadline_us(node)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_are_deterministic_on_the_virtual_clock() {
        let mut w = HeartbeatWatchdog::new(2, 1_000.0);
        assert_eq!(w.deadline_us(0), 1_000.0);
        assert!(!w.expired(0, 1_000.0));
        assert!(w.expired(0, 1_000.1));

        w.beat(0, 800.0);
        assert_eq!(w.deadline_us(0), 1_800.0);
        assert!(!w.expired(0, 1_500.0));
        assert_eq!(w.overdue_us(0, 2_300.0), 500.0);

        // Beats never rewind.
        w.beat(0, 100.0);
        assert_eq!(w.deadline_us(0), 1_800.0);

        // Node 1 untouched.
        assert!(w.expired(1, 1_200.0));
        assert_eq!(w.timeout_us(), 1_000.0);
    }
}
