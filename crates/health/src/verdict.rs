//! Typed health verdicts: what the monitor concluded about a node.

/// The gray-failure class a verdict asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerdictKind {
    /// The node completes work much slower than its healthy model.
    Straggler,
    /// Transfers touching the node cost far more than the planner's
    /// healthy link model predicts.
    GrayLink,
    /// The node's accelerator latency is creeping upward over time.
    DegradingVf,
    /// The node stopped producing completions before its heartbeat
    /// deadline on the virtual clock.
    MissedHeartbeat,
    /// Cluster membership confirmed the node unreachable: gossip
    /// suspicion outlived the suspect timeout. Established externally
    /// by the membership layer (via [`flag`](crate::HealthMonitor::flag))
    /// rather than inferred from latency, and fed into the same
    /// breaker/brownout pipeline as the gray verdicts.
    Unreachable,
}

impl VerdictKind {
    /// Stable lower-case identifier used in traces and telemetry.
    pub fn id(&self) -> &'static str {
        match self {
            VerdictKind::Straggler => "straggler",
            VerdictKind::GrayLink => "gray_link",
            VerdictKind::DegradingVf => "degrading_vf",
            VerdictKind::MissedHeartbeat => "missed_heartbeat",
            VerdictKind::Unreachable => "unreachable",
        }
    }
}

/// One conclusion of the health monitor: at virtual time `at_us`, node
/// `node` exhibits the gray-failure class `kind` with evidence strength
/// `score` (the observed inflation/factor/slope that crossed the
/// configured threshold).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthVerdict {
    /// Virtual time the verdict was reached, in µs.
    pub at_us: f64,
    /// Node the verdict is about.
    pub node: usize,
    /// Asserted gray-failure class.
    pub kind: VerdictKind,
    /// Evidence strength (metric value that crossed the threshold).
    pub score: f64,
}

impl HealthVerdict {
    /// Stable one-line rendering used in telemetry event details and
    /// heal traces: `verdict=<id> node=<n> at_us=<t> score=<s>`.
    pub fn describe(&self) -> String {
        format!(
            "verdict={} node={} at_us={:.3} score={:.3}",
            self.kind.id(),
            self.node,
            self.at_us,
            self.score
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_stable() {
        let v = HealthVerdict {
            at_us: 1500.25,
            node: 3,
            kind: VerdictKind::Straggler,
            score: 4.5,
        };
        assert_eq!(
            v.describe(),
            "verdict=straggler node=3 at_us=1500.250 score=4.500"
        );
        assert_eq!(VerdictKind::GrayLink.id(), "gray_link");
        assert_eq!(VerdictKind::DegradingVf.id(), "degrading_vf");
        assert_eq!(VerdictKind::MissedHeartbeat.id(), "missed_heartbeat");
    }
}
