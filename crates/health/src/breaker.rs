//! Per-node circuit breakers on the virtual clock.
//!
//! A breaker isolates a suspect node: *closed* admits work normally,
//! *open* refuses placements until a deterministic deadline, and
//! *half-open* admits exactly one probe task whose outcome decides
//! whether the node rejoins (probe healthy → closed) or stays isolated
//! with an exponentially longer open window (probe slow → open again).

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// How long the first open window lasts, in virtual µs.
    pub open_us: f64,
    /// Growth factor applied to the open window on every consecutive
    /// re-trip (a failed probe doubles the isolation by default).
    pub backoff_multiplier: f64,
}

impl Default for BreakerConfig {
    /// 5 ms first open window, doubling on failed probes.
    fn default() -> BreakerConfig {
        BreakerConfig {
            open_us: 5_000.0,
            backoff_multiplier: 2.0,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: placements admitted normally.
    Closed,
    /// Isolated: placements refused until the open deadline.
    Open,
    /// Probing: exactly one probe placement admitted.
    HalfOpen,
}

/// What the breaker says about a proposed placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Place normally.
    Admit,
    /// Place as the half-open probe; report the outcome back via
    /// [`CircuitBreaker::probe_succeeded`] / [`CircuitBreaker::probe_failed`].
    Probe,
    /// Do not place on this node.
    Refuse,
}

/// A deterministic circuit breaker for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    open_until_us: f64,
    /// Consecutive trips since the last successful probe (drives the
    /// exponential open window).
    streak: u32,
    /// Total trips over the breaker's lifetime (for stats).
    opens: u32,
    probe_inflight: bool,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            open_until_us: 0.0,
            streak: 0,
            opens: 0,
            probe_inflight: false,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total trips over the breaker's lifetime.
    pub fn opens(&self) -> u32 {
        self.opens
    }

    /// The virtual time the current open window ends (0 when never
    /// tripped).
    pub fn open_until_us(&self) -> f64 {
        self.open_until_us
    }

    /// Trips the breaker at `now_us`: the node is isolated until
    /// `now_us + open_us * backoff_multiplier^streak`.
    pub fn trip(&mut self, now_us: f64) {
        let window = self.cfg.open_us * self.cfg.backoff_multiplier.powi(self.streak as i32);
        self.state = BreakerState::Open;
        self.open_until_us = now_us + window;
        self.streak += 1;
        self.opens += 1;
        self.probe_inflight = false;
    }

    /// What [`CircuitBreaker::admit`] *would* answer at `now_us`,
    /// without committing any transition. Schedulers use this to
    /// classify candidate nodes before choosing one; only the chosen
    /// node's breaker is then asked to `admit`.
    pub fn peek(&self, now_us: f64) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Admit,
            BreakerState::Open => {
                if now_us >= self.open_until_us {
                    Admission::Probe
                } else {
                    Admission::Refuse
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    Admission::Refuse
                } else {
                    Admission::Probe
                }
            }
        }
    }

    /// Asks whether a placement starting at `now_us` may proceed.
    /// Transitions open → half-open when the deadline has passed, and
    /// admits at most one probe while half-open.
    pub fn admit(&mut self, now_us: f64) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Admit,
            BreakerState::Open => {
                if now_us >= self.open_until_us {
                    self.state = BreakerState::HalfOpen;
                    self.probe_inflight = true;
                    Admission::Probe
                } else {
                    Admission::Refuse
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    Admission::Refuse
                } else {
                    self.probe_inflight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// The half-open probe came back healthy: close the breaker and
    /// reset the exponential backoff.
    pub fn probe_succeeded(&mut self) {
        self.state = BreakerState::Closed;
        self.streak = 0;
        self.probe_inflight = false;
    }

    /// The half-open probe was still slow: re-trip with a longer
    /// window.
    pub fn probe_failed(&mut self, now_us: f64) {
        self.trip(now_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_open_halfopen_cycle() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(100.0), Admission::Admit);

        b.trip(1_000.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_until_us(), 6_000.0);
        assert_eq!(b.admit(2_000.0), Admission::Refuse);

        // Deadline passed: exactly one probe admitted.
        assert_eq!(b.admit(6_500.0), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(6_600.0), Admission::Refuse, "one probe in flight");

        b.probe_succeeded();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(7_000.0), Admission::Admit);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn failed_probes_back_off_exponentially() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.trip(0.0);
        assert_eq!(b.open_until_us(), 5_000.0);
        assert_eq!(b.admit(5_000.0), Admission::Probe);
        b.probe_failed(5_000.0);
        assert_eq!(b.open_until_us(), 15_000.0, "second window doubles");
        assert_eq!(b.admit(14_999.0), Admission::Refuse);
        assert_eq!(b.admit(15_000.0), Admission::Probe);
        b.probe_failed(15_000.0);
        assert_eq!(b.open_until_us(), 35_000.0, "third window doubles again");
        assert_eq!(b.opens(), 3);
        // A success resets the backoff streak.
        assert_eq!(b.admit(40_000.0), Admission::Probe);
        b.probe_succeeded();
        b.trip(50_000.0);
        assert_eq!(
            b.open_until_us(),
            55_000.0,
            "streak reset to the base window"
        );
    }
}
