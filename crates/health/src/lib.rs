//! # everest-health
//!
//! The closed-loop self-healing layer of the EVEREST SDK reproduction:
//! the paper (§VII) makes anomaly detection a first-class service, and
//! this crate turns it from an offline report into a control loop.
//!
//! * [`monitor`] — the streaming [`HealthMonitor`]: per-node sliding
//!   windows over achieved task latencies, link factors and accelerator
//!   inflation, scored online through an
//!   [`everest_anomaly::DetectionNode`], emitting typed
//!   [`HealthVerdict`]s (straggler, gray link, degrading VF) the
//!   moment evidence crosses threshold;
//! * [`breaker`] — per-node [`CircuitBreaker`]s
//!   (closed / open / half-open with probe placements and exponential
//!   re-open windows) on the virtual clock;
//! * [`watchdog`] — [`HeartbeatWatchdog`]s with deterministic deadlines,
//!   catching nodes that fall silent without ever raising an error;
//! * [`verdict`] — the verdict vocabulary shared with the scheduler.
//!
//! Everything is deterministic: decisions are pure functions of the fed
//! samples and the seed. The monitor mirrors what it sees into
//! `everest-telemetry` (`health.*` names, documented in
//! `docs/OBSERVABILITY.md`) but never reads the registry back, so
//! identical campaigns reach identical verdicts even on a shared
//! registry. The scheduler side of the loop lives in
//! `everest-runtime::scheduler` (`run_self_healing`), and the fault
//! kinds this layer exists to catch are the *gray* members of
//! `everest-faults::FaultKind`.
//!
//! # Examples
//!
//! ```
//! use everest_health::{HealthConfig, HealthMonitor, VerdictKind};
//! use everest_telemetry::Registry;
//!
//! let mut monitor = HealthMonitor::new(2, HealthConfig::default(), 7, Registry::new());
//! for i in 0..8 {
//!     let at_us = 1_000.0 * (i + 1) as f64;
//!     monitor.record_task(0, 1.0, at_us); // healthy
//!     monitor.record_task(1, 4.0, at_us); // 4x slower than modelled
//! }
//! let verdicts = monitor.drain_new();
//! assert_eq!(verdicts.len(), 1);
//! assert_eq!(verdicts[0].node, 1);
//! assert_eq!(verdicts[0].kind, VerdictKind::Straggler);
//! ```

#![warn(clippy::unwrap_used)]

pub mod breaker;
pub mod monitor;
pub mod verdict;
pub mod watchdog;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use monitor::{HealthConfig, HealthMonitor, MonitorSnapshot};
pub use verdict::{HealthVerdict, VerdictKind};
pub use watchdog::HeartbeatWatchdog;
