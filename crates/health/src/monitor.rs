//! The streaming health monitor: the detection half of the closed loop.
//!
//! The scheduler feeds every committed placement into the monitor —
//! achieved compute inflation (actual / healthy-model duration),
//! observed link factors, and accelerator inflation — as the virtual
//! clock advances. The monitor keeps per-node sliding windows, scores
//! samples online through an [`everest_anomaly::DetectionNode`], and
//! emits typed [`HealthVerdict`]s the moment a node's evidence crosses
//! the configured thresholds. Every sample is mirrored to the telemetry
//! registry (`health.node<i>.<series>` windowed monitors plus
//! `health.*` histograms) so operators see what the loop sees.
//!
//! Determinism: decisions are functions of the fed samples and the seed
//! only — the monitor *writes* telemetry but never reads it back, so
//! two identical campaigns reach identical verdicts even when they
//! share a global registry.

use std::collections::BTreeSet;
use std::sync::Arc;

use everest_anomaly::dataset::Dataset;
use everest_anomaly::service::{fit_detector, DetectionNode};
use everest_anomaly::tpe::{ParamValue, Params};
use everest_telemetry::{CounterHandle, HistogramHandle, MonitorHandle, Registry};

use crate::verdict::{HealthVerdict, VerdictKind};

/// Every Nth fed sample lands in the `health.inflation`,
/// `health.link_factor` and `health.fpga_inflation` distribution
/// histograms (deterministic, not randomized — replays stay
/// byte-identical). The verdict logic, the per-node windowed monitors
/// and the exact `health.samples` counter are never sampled.
const HEALTH_SAMPLE_EVERY: u64 = 8;

/// Pre-resolved telemetry handles for the monitor's per-sample hot
/// path: one registry-map lookup per name at construction instead of
/// one string-keyed lookup (plus a `format!` for the per-node names)
/// per fed sample.
struct MonitorTelemetry {
    node_inflation: Vec<MonitorHandle>,
    node_link: Vec<MonitorHandle>,
    inflation: HistogramHandle,
    link_factor: HistogramHandle,
    fpga_inflation: HistogramHandle,
    samples: CounterHandle,
}

impl MonitorTelemetry {
    fn new(nodes: usize, window: usize, registry: &Arc<Registry>) -> MonitorTelemetry {
        MonitorTelemetry {
            node_inflation: (0..nodes)
                .map(|n| registry.monitor_handle(&format!("health.node{n}.inflation"), window))
                .collect(),
            node_link: (0..nodes)
                .map(|n| registry.monitor_handle(&format!("health.node{n}.link"), window))
                .collect(),
            inflation: registry.histogram_handle_sampled("health.inflation", HEALTH_SAMPLE_EVERY),
            link_factor: registry
                .histogram_handle_sampled("health.link_factor", HEALTH_SAMPLE_EVERY),
            fpga_inflation: registry
                .histogram_handle_sampled("health.fpga_inflation", HEALTH_SAMPLE_EVERY),
            samples: registry.counter_handle("health.samples"),
        }
    }
}

/// Monitor tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Sliding-window length per node and series.
    pub window: usize,
    /// Samples required on a node before any verdict about it.
    pub min_samples: usize,
    /// Contamination rate for the online anomaly detector.
    pub contamination: f64,
    /// Mean compute inflation that convicts a straggler (≥ 1).
    pub straggler_ratio: f64,
    /// Mean observed link factor that convicts a gray link (≥ 1).
    pub link_factor: f64,
    /// Accelerator-inflation slope (per virtual ms) that convicts a
    /// degrading VF.
    pub creep_per_ms: f64,
    /// Detector refit cadence, in accepted samples.
    pub refit_every: usize,
}

impl Default for HealthConfig {
    /// 12-sample windows, 4 samples before judging, 5 % contamination,
    /// 1.5× straggler threshold, 2× link threshold, 0.01/ms creep
    /// threshold, refit every 16 samples.
    fn default() -> HealthConfig {
        HealthConfig {
            window: 12,
            min_samples: 4,
            contamination: 0.05,
            straggler_ratio: 1.5,
            link_factor: 2.0,
            creep_per_ms: 0.01,
            refit_every: 16,
        }
    }
}

/// Plain-data snapshot of a [`HealthMonitor`], sufficient to rebuild it
/// exactly (detector refits are pure functions of rows + params + seed,
/// so the snapshot stores rows, not models).
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    cfg: HealthConfig,
    seed: u64,
    inflation: Vec<Vec<f64>>,
    link: Vec<Vec<f64>>,
    fpga: Vec<Vec<(f64, f64)>>,
    detector_window: Vec<Vec<f64>>,
    last_refit_len: Option<usize>,
    samples_since_refit: usize,
    emitted: Vec<(usize, VerdictKind)>,
    verdicts: Vec<HealthVerdict>,
}

/// The streaming monitor for one campaign.
pub struct HealthMonitor {
    registry: Arc<Registry>,
    telemetry: MonitorTelemetry,
    cfg: HealthConfig,
    seed: u64,
    /// Per-node compute-inflation windows (actual / healthy duration).
    inflation: Vec<Vec<f64>>,
    /// Per-node observed link-factor windows.
    link: Vec<Vec<f64>>,
    /// Per-node `(at_us, inflation)` accelerator samples.
    fpga: Vec<Vec<(f64, f64)>>,
    /// Online anomaly detector over single-feature inflation rows.
    node: DetectionNode,
    /// Length of the window prefix the detector was last refit on (for
    /// exact restore). The post-refit window is exactly what the
    /// detector saw — `update` evicts before fitting — and only grows
    /// by appends until the next refit, so a length pins it down
    /// without cloning rows on the hot path.
    last_refit_len: Option<usize>,
    samples_since_refit: usize,
    /// `(node, kind)` pairs already convicted — one verdict each.
    emitted: BTreeSet<(usize, VerdictKind)>,
    /// Every verdict reached, in emission order.
    verdicts: Vec<HealthVerdict>,
    /// Verdicts not yet drained by the control side.
    pending: Vec<HealthVerdict>,
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("cfg", &self.cfg)
            .field("seed", &self.seed)
            .field("nodes", &self.inflation.len())
            .field("verdicts", &self.verdicts)
            .finish_non_exhaustive()
    }
}

/// Baseline detector: a z-score model fit on a synthetic healthy prior
/// (inflation ≈ 1 with a small deterministic spread), refit online as
/// real samples stream in.
fn baseline_node(cfg: &HealthConfig, seed: u64) -> (DetectionNode, Params) {
    let mut params = Params::new();
    params.insert("family".into(), ParamValue::C("zscore".into()));
    params.insert("contamination".into(), ParamValue::F(cfg.contamination));
    let rows: Vec<Vec<f64>> = (0..32)
        .map(|i| vec![1.0 + 0.02 * ((i % 7) as f64 - 3.0)])
        .collect();
    let detector = fit_detector(&params, &Dataset::from_rows(rows), seed);
    (
        DetectionNode::from_detector(detector, params.clone(), 64, seed),
        params,
    )
}

impl HealthMonitor {
    /// A monitor over `nodes` nodes, mirroring samples into `registry`.
    pub fn new(
        nodes: usize,
        cfg: HealthConfig,
        seed: u64,
        registry: Arc<Registry>,
    ) -> HealthMonitor {
        let (node, _) = baseline_node(&cfg, seed);
        HealthMonitor {
            telemetry: MonitorTelemetry::new(nodes, cfg.window, &registry),
            registry,
            cfg,
            seed,
            inflation: vec![Vec::new(); nodes],
            link: vec![Vec::new(); nodes],
            fpga: vec![Vec::new(); nodes],
            node,
            last_refit_len: None,
            samples_since_refit: 0,
            emitted: BTreeSet::new(),
            verdicts: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Every verdict reached so far, in emission order.
    pub fn verdicts(&self) -> &[HealthVerdict] {
        &self.verdicts
    }

    /// Drains the verdicts emitted since the last drain (the control
    /// loop polls this after every fed sample).
    pub fn drain_new(&mut self) -> Vec<HealthVerdict> {
        std::mem::take(&mut self.pending)
    }

    fn push_window(window: &mut Vec<f64>, cap: usize, value: f64) {
        window.push(value);
        if window.len() > cap {
            let excess = window.len() - cap;
            window.drain(..excess);
        }
    }

    fn mean(window: &[f64]) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        window.iter().sum::<f64>() / window.len() as f64
    }

    /// Records an externally established verdict (e.g. a heartbeat
    /// watchdog timeout) with the monitor's once-per-`(node, kind)`
    /// dedup. Returns the verdict when it is new.
    pub fn flag(
        &mut self,
        kind: VerdictKind,
        node: usize,
        at_us: f64,
        score: f64,
    ) -> Option<HealthVerdict> {
        if !self.emitted.insert((node, kind)) {
            return None;
        }
        let verdict = HealthVerdict {
            at_us,
            node,
            kind,
            score,
        };
        self.registry.counter_add("health.verdicts", 1);
        self.registry.event("health.verdict", verdict.describe());
        self.verdicts.push(verdict.clone());
        self.pending.push(verdict.clone());
        Some(verdict)
    }

    /// Feeds one completed task: `inflation` is achieved duration over
    /// the healthy model's prediction for the same placement.
    pub fn record_task(&mut self, node: usize, inflation: f64, at_us: f64) {
        if node >= self.inflation.len() {
            return;
        }
        Self::push_window(&mut self.inflation[node], self.cfg.window, inflation);
        self.telemetry.node_inflation[node].observe(inflation);
        self.telemetry.inflation.record(inflation);
        self.telemetry.samples.add(1);

        // Feed the online detector: normal-looking samples become
        // training data, exactly like DetectionNode::detect.
        if !self.node.score_row(&[inflation]) {
            self.node.push_normal(vec![inflation]);
        }
        self.samples_since_refit += 1;
        if self.samples_since_refit >= self.cfg.refit_every {
            self.samples_since_refit = 0;
            self.node.update();
            self.last_refit_len = Some(self.node.window_rows().len());
        }

        let window = &self.inflation[node];
        if window.len() >= self.cfg.min_samples {
            let mean = Self::mean(window);
            if mean >= self.cfg.straggler_ratio && self.node.score_row(&[mean]) {
                self.flag(VerdictKind::Straggler, node, at_us, mean);
            }
        }
    }

    /// Feeds one observed transfer: `factor` is achieved transfer cost
    /// over the healthy link model's prediction.
    pub fn record_link(&mut self, node: usize, factor: f64, at_us: f64) {
        if node >= self.link.len() {
            return;
        }
        Self::push_window(&mut self.link[node], self.cfg.window, factor);
        self.telemetry.node_link[node].observe(factor);
        self.telemetry.link_factor.record(factor);

        let window = &self.link[node];
        if window.len() >= self.cfg.min_samples {
            let mean = Self::mean(window);
            if mean >= self.cfg.link_factor {
                self.flag(VerdictKind::GrayLink, node, at_us, mean);
            }
        }
    }

    /// Feeds one accelerator completion: `inflation` as in
    /// [`HealthMonitor::record_task`], timestamped so the monitor can
    /// estimate the latency-creep slope.
    pub fn record_fpga(&mut self, node: usize, inflation: f64, at_us: f64) {
        if node >= self.fpga.len() {
            return;
        }
        let samples = &mut self.fpga[node];
        samples.push((at_us, inflation));
        if samples.len() > self.cfg.window {
            let excess = samples.len() - self.cfg.window;
            samples.drain(..excess);
        }
        self.telemetry.fpga_inflation.record(inflation);

        if samples.len() >= self.cfg.min_samples {
            let slope = Self::slope_per_ms(samples);
            if slope >= self.cfg.creep_per_ms {
                self.flag(VerdictKind::DegradingVf, node, at_us, slope);
            }
        }
    }

    /// Least-squares inflation slope in 1/ms over `(at_us, inflation)`
    /// samples; 0 for degenerate windows.
    fn slope_per_ms(samples: &[(f64, f64)]) -> f64 {
        let n = samples.len() as f64;
        let mean_t = samples.iter().map(|(t, _)| t).sum::<f64>() / n;
        let mean_y = samples.iter().map(|(_, y)| y).sum::<f64>() / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for (t, y) in samples {
            num += (t - mean_t) * (y - mean_y);
            den += (t - mean_t) * (t - mean_t);
        }
        if den <= 0.0 {
            return 0.0;
        }
        num / den * 1_000.0
    }

    /// Plain-data snapshot for checkpointing; see
    /// [`HealthMonitor::restore`].
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            cfg: self.cfg.clone(),
            seed: self.seed,
            inflation: self.inflation.clone(),
            link: self.link.clone(),
            fpga: self.fpga.clone(),
            detector_window: self.node.window_rows().to_vec(),
            last_refit_len: self.last_refit_len,
            samples_since_refit: self.samples_since_refit,
            emitted: self.emitted.iter().cloned().collect(),
            verdicts: self.verdicts.clone(),
        }
    }

    /// Rebuilds a monitor exactly from a snapshot: the detector is
    /// re-derived by replaying the last refit (a pure function of the
    /// stored rows), so the restored monitor reaches the same verdicts
    /// at the same virtual times as one that never stopped.
    pub fn restore(snap: MonitorSnapshot, registry: Arc<Registry>) -> HealthMonitor {
        let (mut node, _) = baseline_node(&snap.cfg, snap.seed);
        if let Some(len) = snap.last_refit_len {
            let len = len.min(snap.detector_window.len());
            node.replace_window(snap.detector_window[..len].to_vec());
            node.update();
        }
        node.replace_window(snap.detector_window);
        HealthMonitor {
            telemetry: MonitorTelemetry::new(snap.inflation.len(), snap.cfg.window, &registry),
            registry,
            cfg: snap.cfg,
            seed: snap.seed,
            inflation: snap.inflation,
            link: snap.link,
            fpga: snap.fpga,
            node,
            last_refit_len: snap.last_refit_len,
            samples_since_refit: snap.samples_since_refit,
            emitted: snap.emitted.into_iter().collect(),
            verdicts: snap.verdicts,
            pending: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(nodes: usize) -> HealthMonitor {
        HealthMonitor::new(nodes, HealthConfig::default(), 7, Registry::new())
    }

    #[test]
    fn straggler_convicted_once_healthy_nodes_spared() {
        let mut m = monitor(2);
        for i in 0..8 {
            let at = 1_000.0 * (i + 1) as f64;
            m.record_task(0, 1.0, at);
            m.record_task(1, 4.0, at);
        }
        let verdicts = m.drain_new();
        assert_eq!(verdicts.len(), 1, "got {verdicts:?}");
        assert_eq!(verdicts[0].node, 1);
        assert_eq!(verdicts[0].kind, VerdictKind::Straggler);
        assert!(verdicts[0].score >= 1.5);
        // Dedup: further evidence never re-convicts.
        m.record_task(1, 4.0, 10_000.0);
        assert!(m.drain_new().is_empty());
        assert_eq!(m.verdicts().len(), 1);
    }

    #[test]
    fn gray_link_and_vf_creep_detected() {
        let mut m = monitor(2);
        for i in 0..6 {
            let at = 500.0 * (i + 1) as f64;
            m.record_link(0, 1.0, at);
            m.record_link(1, 5.0, at);
            // Accelerator latency creeping up ~0.1 per ms on node 0.
            m.record_fpga(0, 1.0 + 0.1 * at / 1_000.0, at);
        }
        let verdicts = m.drain_new();
        let kinds: Vec<(usize, VerdictKind)> = verdicts.iter().map(|v| (v.node, v.kind)).collect();
        assert!(kinds.contains(&(1, VerdictKind::GrayLink)), "got {kinds:?}");
        assert!(
            kinds.contains(&(0, VerdictKind::DegradingVf)),
            "got {kinds:?}"
        );
        assert!(!kinds.contains(&(0, VerdictKind::GrayLink)));
    }

    #[test]
    fn verdicts_are_deterministic_and_registry_independent() {
        let run = |registry: Arc<Registry>| {
            let mut m = HealthMonitor::new(3, HealthConfig::default(), 11, registry);
            for i in 0..40 {
                let at = 250.0 * (i + 1) as f64;
                m.record_task(i % 3, if i % 3 == 2 { 3.5 } else { 1.02 }, at);
                m.record_link(i % 3, 1.1, at);
            }
            m.verdicts().to_vec()
        };
        let a = run(Registry::new());
        let shared = Registry::new();
        shared.counter_add("health.samples", 999); // pre-polluted registry
        let b = run(shared);
        assert_eq!(a, b, "decisions must not read the registry back");
        assert!(a.iter().any(|v| v.kind == VerdictKind::Straggler));
    }

    #[test]
    fn snapshot_restore_reaches_identical_verdicts() {
        let feed = |m: &mut HealthMonitor, from: usize, to: usize| {
            for i in from..to {
                let at = 400.0 * (i + 1) as f64;
                // Node 1 degrades late, so the verdict lands after the
                // snapshot point.
                let inflation = if i >= 24 && i % 2 == 1 { 4.2 } else { 1.01 };
                m.record_task(i % 2, inflation, at);
            }
        };
        let mut uninterrupted = monitor(2);
        feed(&mut uninterrupted, 0, 48);

        let mut first = monitor(2);
        feed(&mut first, 0, 20);
        let snap = first.snapshot();
        let mut resumed = HealthMonitor::restore(snap, Registry::new());
        feed(&mut resumed, 20, 48);

        assert_eq!(uninterrupted.verdicts(), resumed.verdicts());
        assert_eq!(uninterrupted.snapshot(), resumed.snapshot());
    }

    #[test]
    fn telemetry_mirrors_samples() {
        let registry = Registry::new();
        let mut m = HealthMonitor::new(1, HealthConfig::default(), 5, Arc::clone(&registry));
        for i in 0..6 {
            m.record_task(0, 5.0, 100.0 * (i + 1) as f64);
        }
        assert!(registry
            .monitor_names()
            .iter()
            .any(|n| n == "health.node0.inflation"));
        let events = registry.events();
        assert!(events.iter().any(|e| e.name == "health.verdict"));
    }
}
