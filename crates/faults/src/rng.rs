//! A tiny deterministic generator for fault plans and backoff jitter.
//!
//! Chaos campaigns must replay byte-identically from a seed, across
//! runs and across platforms, so the crate carries its own SplitMix64
//! instead of depending on an external RNG whose stream might change.
//! SplitMix64 passes BigCrush for this workload class (timed fault
//! draws, jitter factors) and needs eight bytes of state.

/// Deterministic 64-bit generator (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams
    /// forever; that invariant is what makes chaos replays exact.
    pub fn new(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * self.next_unit()
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// A child generator whose stream is independent of the parent's
    /// continued use. Used to give each fault-plan consumer (backoff
    /// jitter, campaign synthesis) its own substream so adding draws in
    /// one place never perturbs the other.
    pub fn fork(&self, stream: u64) -> DetRng {
        let mut mixer = DetRng::new(self.state ^ stream.wrapping_mul(0xa076_1d64_78bd_642f));
        DetRng::new(mixer.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut rng = DetRng::new(7);
        for _ in 0..1000 {
            let u = rng.next_unit();
            assert!((0.0..1.0).contains(&u));
            let r = rng.range_f64(5.0, 10.0);
            assert!((5.0..10.0).contains(&r));
            assert!(rng.index(3) < 3);
        }
    }

    #[test]
    fn forks_are_independent_of_parent_progress() {
        let parent = DetRng::new(9);
        let mut fork_before = parent.fork(1);
        let mut consumed = parent.clone();
        consumed.next_u64();
        // fork is taken from a value, not a shared &mut: same stream id
        // on the same state gives the same child.
        let mut fork_again = parent.fork(1);
        assert_eq!(fork_before.next_u64(), fork_again.next_u64());
        assert_ne!(parent.fork(1).next_u64(), parent.fork(2).next_u64());
    }
}
