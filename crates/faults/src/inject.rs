//! The fault source consulted by platform-layer operations.
//!
//! A [`FaultInjector`] scopes a [`FaultPlan`] to one node and arms each
//! fault exactly once: when an operation's virtual-time window sweeps
//! past a pending fault that applies to that operation kind, the fault
//! fires, is recorded to telemetry, and is returned to the caller —
//! which turns it into a typed error, a latency penalty, or a state
//! change. Clones share the armed/fired state, so one plan drives every
//! session opened against the same simulated device.

use std::sync::{Arc, Mutex};

use crate::plan::{FaultKind, FaultPlan, FaultSpec};

/// The operation classes the platform layer distinguishes when asking
/// whether a fault applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A DMA / host-link buffer sync.
    Sync,
    /// A kernel launch.
    Kernel,
    /// A partial reconfiguration.
    PartialReconfig,
    /// A device external-memory stream.
    MemoryStream,
}

fn applies(kind: &FaultKind, op: FaultOp) -> bool {
    match kind {
        // A dead node fails whatever touches it next.
        FaultKind::NodeCrash => true,
        FaultKind::LinkDegrade { .. } | FaultKind::DmaTimeout => op == FaultOp::Sync,
        FaultKind::TransientKernelError => op == FaultOp::Kernel,
        FaultKind::MemoryEcc => matches!(op, FaultOp::Kernel | FaultOp::MemoryStream),
        FaultKind::PartialReconfigFail => op == FaultOp::PartialReconfig,
        // VF faults are consumed by the virtualization layer, never by
        // device operations.
        FaultKind::VfUnplug { .. } => false,
        // Gray faults never fire as events: they are standing latency
        // windows queried via the gray_*_factor methods.
        FaultKind::SlowNode { .. } | FaultKind::GrayLink { .. } | FaultKind::VfCreep { .. } => {
            false
        }
        // Network faults target the group boundary, not a device: they
        // are consumed only by the cluster connectivity model.
        FaultKind::PartitionSym { .. }
        | FaultKind::PartitionAsym { .. }
        | FaultKind::MsgDelay { .. }
        | FaultKind::MsgLoss { .. } => false,
    }
}

/// The silent latency effect a fault kind exerts, if any. The mapping
/// is the single exhaustive `FaultKind` match behind every
/// `gray_*_factor` query, so a new fault kind is a compile error here
/// rather than a silently ignored window.
enum GrayEffect {
    /// Compute-time multiplier for `duration_us` past onset.
    Compute { factor: f64, duration_us: f64 },
    /// Transfer-cost multiplier for `duration_us` past onset.
    Link { factor: f64, duration_us: f64 },
    /// Accelerator latency creeping by `per_ms` per millisecond.
    Creep { per_ms: f64 },
    /// No silent latency effect.
    Inert,
}

fn gray_effect(kind: &FaultKind) -> GrayEffect {
    match *kind {
        FaultKind::SlowNode {
            factor,
            duration_us,
        } => GrayEffect::Compute {
            factor,
            duration_us,
        },
        FaultKind::GrayLink {
            factor,
            duration_us,
        } => GrayEffect::Link {
            factor,
            duration_us,
        },
        FaultKind::VfCreep { per_ms } => GrayEffect::Creep { per_ms },
        FaultKind::NodeCrash
        | FaultKind::LinkDegrade { .. }
        | FaultKind::DmaTimeout
        | FaultKind::PartialReconfigFail
        | FaultKind::TransientKernelError
        | FaultKind::MemoryEcc
        | FaultKind::VfUnplug { .. }
        | FaultKind::PartitionSym { .. }
        | FaultKind::PartitionAsym { .. }
        | FaultKind::MsgDelay { .. }
        | FaultKind::MsgLoss { .. } => GrayEffect::Inert,
    }
}

#[derive(Debug)]
struct State {
    plan: FaultPlan,
    fired: Vec<bool>,
}

/// A cloneable, thread-safe handle arming one plan against one node.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    node: usize,
    state: Arc<Mutex<State>>,
}

impl FaultInjector {
    /// Arms `plan` against node `node`. Faults targeting other nodes
    /// never fire through this injector.
    pub fn for_node(plan: FaultPlan, node: usize) -> FaultInjector {
        let fired = vec![false; plan.len()];
        FaultInjector {
            node,
            state: Arc::new(Mutex::new(State { plan, fired })),
        }
    }

    /// The node this injector is scoped to.
    pub fn node(&self) -> usize {
        self.node
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fires the earliest pending fault that targets this node, applies
    /// to `op`, and is due by `now_us` (virtual time). Returns `None`
    /// when nothing fires. Each fault fires at most once per arming.
    pub fn fire(&self, op: FaultOp, now_us: f64) -> Option<FaultSpec> {
        let mut state = self.lock();
        let idx = {
            let State { plan, fired } = &mut *state;
            plan.faults().iter().enumerate().position(|(i, f)| {
                !fired[i] && f.node == self.node && f.at_us <= now_us && applies(&f.kind, op)
            })?
        };
        state.fired[idx] = true;
        let fault = state.plan.faults()[idx].clone();
        drop(state);
        everest_telemetry::counter_add("faults.injected", 1);
        everest_telemetry::event("faults.inject", fault.describe());
        Some(fault)
    }

    /// Fires every pending VF hot-unplug fault due by `now_us`,
    /// returning the unplugged VF indexes. Consumed by the
    /// virtualization layer.
    pub fn fire_vf_faults(&self, now_us: f64) -> Vec<u32> {
        let mut state = self.lock();
        let mut due = Vec::new();
        let State { plan, fired } = &mut *state;
        for (i, f) in plan.faults().iter().enumerate() {
            if fired[i] || f.node != self.node || f.at_us > now_us {
                continue;
            }
            if let FaultKind::VfUnplug { vf } = f.kind {
                fired[i] = true;
                due.push(vf);
            }
        }
        drop(state);
        for vf in &due {
            everest_telemetry::counter_add("faults.injected", 1);
            everest_telemetry::event(
                "faults.inject",
                format!("kind=vf_unplug node={} vf={vf}", self.node),
            );
        }
        due
    }

    /// Silent compute-time multiplier for this node at `now_us`: the
    /// worst [`FaultKind::SlowNode`] window in effect (1.0 when
    /// healthy). Gray queries never consume faults, never error and
    /// never reach telemetry — invisibility is the point.
    pub fn gray_compute_factor(&self, now_us: f64) -> f64 {
        let state = self.lock();
        state
            .plan
            .faults()
            .iter()
            .filter(|f| f.node == self.node)
            .filter_map(|f| match gray_effect(&f.kind) {
                GrayEffect::Compute {
                    factor,
                    duration_us,
                } => (f.at_us <= now_us && now_us < f.at_us + duration_us).then_some(factor),
                GrayEffect::Link { .. } | GrayEffect::Creep { .. } | GrayEffect::Inert => None,
            })
            .fold(1.0, f64::max)
    }

    /// Silent transfer-cost multiplier for this node at `now_us`: the
    /// worst [`FaultKind::GrayLink`] window in effect (1.0 when
    /// healthy).
    pub fn gray_link_factor(&self, now_us: f64) -> f64 {
        let state = self.lock();
        state
            .plan
            .faults()
            .iter()
            .filter(|f| f.node == self.node)
            .filter_map(|f| match gray_effect(&f.kind) {
                GrayEffect::Link {
                    factor,
                    duration_us,
                } => (f.at_us <= now_us && now_us < f.at_us + duration_us).then_some(factor),
                GrayEffect::Compute { .. } | GrayEffect::Creep { .. } | GrayEffect::Inert => None,
            })
            .fold(1.0, f64::max)
    }

    /// Silent accelerator-latency multiplier from creeping VF
    /// degradation: `1 + per_ms * elapsed_ms` past each
    /// [`FaultKind::VfCreep`] onset (1.0 when healthy).
    pub fn gray_vf_factor(&self, now_us: f64) -> f64 {
        let state = self.lock();
        state
            .plan
            .faults()
            .iter()
            .filter(|f| f.node == self.node)
            .filter_map(|f| match gray_effect(&f.kind) {
                GrayEffect::Creep { per_ms } => {
                    (f.at_us < now_us).then(|| 1.0 + per_ms * (now_us - f.at_us) / 1_000.0)
                }
                GrayEffect::Compute { .. } | GrayEffect::Link { .. } | GrayEffect::Inert => None,
            })
            .fold(1.0, f64::max)
    }

    /// Re-arms every fault, so the same plan can drive a fresh replay.
    pub fn rearm(&self) {
        let mut state = self.lock();
        state.fired.iter_mut().for_each(|f| *f = false);
    }

    /// How many faults have fired so far.
    pub fn fired_count(&self) -> usize {
        self.lock().fired.iter().filter(|&&f| f).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(3)
            .with_fault(FaultSpec::new(100.0, 0, FaultKind::DmaTimeout))
            .with_fault(FaultSpec::new(200.0, 0, FaultKind::TransientKernelError))
            .with_fault(FaultSpec::new(300.0, 1, FaultKind::DmaTimeout))
            .with_fault(FaultSpec::new(400.0, 0, FaultKind::VfUnplug { vf: 2 }))
    }

    #[test]
    fn faults_fire_once_scoped_to_node_and_op() {
        let inj = FaultInjector::for_node(plan(), 0);
        // not due yet
        assert_eq!(inj.fire(FaultOp::Sync, 50.0), None);
        // due, matching op
        let f = inj.fire(FaultOp::Sync, 150.0).expect("fires");
        assert_eq!(f.kind, FaultKind::DmaTimeout);
        // fired: does not fire twice
        assert_eq!(inj.fire(FaultOp::Sync, 150.0), None);
        // kernel fault does not apply to syncs
        assert_eq!(inj.fire(FaultOp::Sync, 500.0), None);
        let k = inj.fire(FaultOp::Kernel, 500.0).expect("fires");
        assert_eq!(k.kind, FaultKind::TransientKernelError);
        // node 1 fault never fires through a node-0 injector
        assert_eq!(inj.fired_count(), 2);
    }

    #[test]
    fn vf_faults_routed_separately() {
        let inj = FaultInjector::for_node(plan(), 0);
        assert!(inj.fire_vf_faults(300.0).is_empty());
        assert_eq!(inj.fire_vf_faults(450.0), vec![2]);
        assert!(inj.fire_vf_faults(450.0).is_empty(), "fires once");
    }

    #[test]
    fn gray_faults_never_fire_but_scale_factors() {
        let plan = FaultPlan::new(7)
            .with_fault(FaultSpec::new(
                100.0,
                0,
                FaultKind::SlowNode {
                    factor: 4.0,
                    duration_us: 200.0,
                },
            ))
            .with_fault(FaultSpec::new(
                100.0,
                0,
                FaultKind::GrayLink {
                    factor: 3.0,
                    duration_us: 100.0,
                },
            ))
            .with_fault(FaultSpec::new(500.0, 0, FaultKind::VfCreep { per_ms: 0.5 }));
        let inj = FaultInjector::for_node(plan, 0);
        // Never consumable as typed events, on any op, at any time.
        for op in [
            FaultOp::Sync,
            FaultOp::Kernel,
            FaultOp::PartialReconfig,
            FaultOp::MemoryStream,
        ] {
            assert_eq!(inj.fire(op, 10_000.0), None);
        }
        assert_eq!(inj.fired_count(), 0);
        // Windowed factors.
        assert_eq!(inj.gray_compute_factor(50.0), 1.0);
        assert_eq!(inj.gray_compute_factor(150.0), 4.0);
        assert_eq!(inj.gray_compute_factor(350.0), 1.0);
        assert_eq!(inj.gray_link_factor(150.0), 3.0);
        assert_eq!(inj.gray_link_factor(250.0), 1.0);
        // Creep grows linearly past onset.
        assert_eq!(inj.gray_vf_factor(500.0), 1.0);
        assert!((inj.gray_vf_factor(1_500.0) - 1.5).abs() < 1e-9);
        // Other nodes see nothing.
        let other = FaultInjector::for_node(
            FaultPlan::new(7).with_fault(FaultSpec::new(
                0.0,
                1,
                FaultKind::SlowNode {
                    factor: 9.0,
                    duration_us: 1e9,
                },
            )),
            0,
        );
        assert_eq!(other.gray_compute_factor(10.0), 1.0);
    }

    #[test]
    fn clones_share_state_and_rearm_resets() {
        let inj = FaultInjector::for_node(plan(), 0);
        let clone = inj.clone();
        clone.fire(FaultOp::Sync, 150.0).expect("fires");
        assert_eq!(inj.fire(FaultOp::Sync, 150.0), None, "shared state");
        inj.rearm();
        assert!(clone.fire(FaultOp::Sync, 150.0).is_some(), "re-armed");
    }
}
