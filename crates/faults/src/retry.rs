//! Retry budgets with deterministic exponential backoff + jitter, and
//! the recovery bookkeeping every resilient layer reports.

use crate::rng::DetRng;

/// Per-task retry policy: how many times a transiently failed operation
/// is retried and how long each retry waits.
///
/// The backoff for attempt `k` (0-based) is
/// `base_backoff_us * multiplier^k`, scaled by a jitter factor drawn
/// uniformly from `[1 - jitter_frac, 1 + jitter_frac]`, then clamped to
/// `max_backoff_us` — so identical seeds give identical backoff
/// sequences while distinct retries still decorrelate, and no single
/// wait can exceed the cap.
///
/// # Substream contract
///
/// Jitter is never drawn from an ad-hoc RNG: every layer that retries
/// against a [`crate::FaultPlan`] draws from the plan's dedicated
/// jitter substream, [`crate::FaultPlan::jitter_rng`] (the plan seed
/// forked with stream id `0x1177E5`). The contract is:
///
/// * **One stream per campaign.** All retries in a run share a single
///   `DetRng` forked once from the plan seed, threaded through in
///   program order. Campaign synthesis (`random_campaign`, stream
///   `0xCA05`; `random_gray_campaign`, stream `0x6AA7`) forks different
///   ids, so adding faults to a plan never shifts backoff jitter.
/// * **Exactly one draw per jittered attempt.** [`backoff_us`] consumes
///   exactly one `next_unit()` when `jitter_frac > 0` and **zero**
///   draws when `jitter_frac <= 0` (the exact exponential value is
///   returned without touching the stream). Consumers must not draw
///   extra values between attempts, or replay identity breaks.
/// * **The cap clamps, it does not redraw.** When the jittered value
///   exceeds `max_backoff_us` the value is clamped; the stream still
///   advanced by the one draw, so later attempts stay aligned.
///
/// Under this contract a backoff sequence is a pure function of
/// `(policy, plan seed, attempt order)`, which is what makes chaos
/// campaigns replay byte-identically.
///
/// [`backoff_us`]: RetryPolicy::backoff_us
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed per task before giving up (and degrading).
    pub max_retries: u32,
    /// First backoff, in virtual µs.
    pub base_backoff_us: f64,
    /// Exponential growth factor between attempts.
    pub multiplier: f64,
    /// Relative jitter amplitude in `[0, 1)`.
    pub jitter_frac: f64,
    /// Upper bound on any single backoff, in virtual µs (applied after
    /// jitter). Keeps late attempts from exploding exponentially.
    pub max_backoff_us: f64,
}

impl Default for RetryPolicy {
    /// Three retries, 200 µs base, doubling, ±10 % jitter, 10 ms cap.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_us: 200.0,
            multiplier: 2.0,
            jitter_frac: 0.1,
            max_backoff_us: 10_000.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (fail straight to degradation).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry `attempt` (0-based), drawing jitter from
    /// `rng`. Deterministic given the rng state; see the type-level
    /// *Substream contract* for how many draws are consumed. The
    /// returned value never exceeds `max_backoff_us`.
    pub fn backoff_us(&self, attempt: u32, rng: &mut DetRng) -> f64 {
        let exp = self.base_backoff_us * self.multiplier.powi(attempt as i32);
        if self.jitter_frac <= 0.0 {
            return exp.min(self.max_backoff_us);
        }
        let jitter = 1.0 + self.jitter_frac * (2.0 * rng.next_unit() - 1.0);
        (exp * jitter).min(self.max_backoff_us)
    }
}

/// What recovery cost a simulated run: injected faults, retries,
/// degradations, quarantines and lineage re-execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Faults from the plan that actually fired during the run.
    pub faults_injected: usize,
    /// Individual retry attempts across all tasks.
    pub retries: usize,
    /// Total virtual time spent backing off, in µs.
    pub backoff_us_total: f64,
    /// Tasks that exhausted their retry budget on an accelerator and
    /// fell back to a CPU implementation.
    pub degraded_to_cpu: usize,
    /// Nodes quarantined (blacklisted for new placements) after
    /// accumulating too many faults.
    pub quarantined_nodes: Vec<usize>,
    /// Tasks re-executed because their outputs were stranded on a
    /// crashed node (lineage recovery), in ascending task order.
    pub recovered: Vec<usize>,
}

impl RecoveryStats {
    /// Whether the run needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        self.faults_injected == 0
            && self.retries == 0
            && self.degraded_to_cpu == 0
            && self.quarantined_nodes.is_empty()
            && self.recovered.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_within_jitter() {
        let policy = RetryPolicy::default();
        let mut rng = DetRng::new(5);
        let b0 = policy.backoff_us(0, &mut rng);
        let b1 = policy.backoff_us(1, &mut rng);
        let b2 = policy.backoff_us(2, &mut rng);
        assert!((180.0..=220.0).contains(&b0), "got {b0}");
        assert!((360.0..=440.0).contains(&b1), "got {b1}");
        assert!((720.0..=880.0).contains(&b2), "got {b2}");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        for attempt in 0..5 {
            assert_eq!(
                policy.backoff_us(attempt, &mut a),
                policy.backoff_us(attempt, &mut b)
            );
        }
    }

    #[test]
    fn zero_jitter_is_exact() {
        let policy = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = DetRng::new(1);
        assert_eq!(policy.backoff_us(0, &mut rng), 200.0);
        assert_eq!(policy.backoff_us(3, &mut rng), 1600.0);
    }

    #[test]
    fn cap_bounds_every_attempt() {
        let policy = RetryPolicy {
            max_backoff_us: 1_000.0,
            ..RetryPolicy::default()
        };
        let mut rng = DetRng::new(3);
        for attempt in 0..12 {
            assert!(policy.backoff_us(attempt, &mut rng) <= 1_000.0);
        }
        // Zero-jitter path clamps too, without consuming draws.
        let exact = RetryPolicy {
            jitter_frac: 0.0,
            max_backoff_us: 500.0,
            ..RetryPolicy::default()
        };
        let mut rng = DetRng::new(3);
        assert_eq!(exact.backoff_us(10, &mut rng), 500.0);
    }

    #[test]
    fn clean_stats_detected() {
        assert!(RecoveryStats::default().is_clean());
        let dirty = RecoveryStats {
            retries: 1,
            ..RecoveryStats::default()
        };
        assert!(!dirty.is_clean());
    }
}
