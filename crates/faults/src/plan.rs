//! Seeded, fully deterministic fault plans.
//!
//! A [`FaultPlan`] is a list of timed [`FaultSpec`]s plus the seed that
//! parameterizes every random decision made while executing the plan
//! (backoff jitter, campaign synthesis). Two runs of the same plan are
//! required to produce identical behaviour — the scheduler, platform
//! and CLI layers all derive their randomness from the plan seed and
//! virtual time only, never from wall clocks.

use crate::rng::DetRng;

/// What goes wrong. Targets are expressed against the simulated
/// cluster: `node` lives on the enclosing [`FaultSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The node dies and never returns (fail-stop).
    NodeCrash,
    /// The links touching the node degrade: transfers pay `factor`×
    /// their healthy cost for `duration_us` of virtual time.
    LinkDegrade {
        /// Cost multiplier while the flap lasts (≥ 1).
        factor: f64,
        /// How long the degradation lasts, in virtual µs.
        duration_us: f64,
    },
    /// A DMA/sync operation times out; the operation in flight fails
    /// and must be retried.
    DmaTimeout,
    /// Partial reconfiguration of the node's FPGA fails; the
    /// accelerator is lost until repaired (permanent within one run).
    PartialReconfigFail,
    /// A kernel launch hits a transient error (SEU, protocol hiccup);
    /// retrying usually succeeds.
    TransientKernelError,
    /// A memory ECC event: correctable, but the scrub stalls whatever
    /// was executing on the node.
    MemoryEcc,
    /// A virtual function is surprise hot-unplugged from its VM.
    VfUnplug {
        /// VF index on the node's physical function.
        vf: u32,
    },
    /// *Gray* fault: the node's compute throughput silently drops.
    /// Everything executing there takes `factor`× longer for
    /// `duration_us` of virtual time, but no error is ever raised —
    /// the straggler is only catchable by watching achieved latency.
    SlowNode {
        /// Compute-time multiplier while the slowdown lasts (≥ 1).
        factor: f64,
        /// How long the slowdown lasts, in virtual µs.
        duration_us: f64,
    },
    /// *Gray* fault: a lossy, partially partitioned link. Transfers
    /// touching the node silently pay `factor`× their healthy cost;
    /// unlike [`FaultKind::LinkDegrade`] the planner is never told, so
    /// only byte-counter/latency detection can see it.
    GrayLink {
        /// Transfer-cost multiplier while the loss lasts (≥ 1).
        factor: f64,
        /// How long the partition lasts, in virtual µs.
        duration_us: f64,
    },
    /// *Gray* fault: the node's FPGA virtual function degrades
    /// progressively — accelerator latency inflates by `per_ms` per
    /// virtual millisecond since onset, without ever erroring.
    VfCreep {
        /// Added latency fraction per virtual millisecond since onset.
        per_ms: f64,
    },
    /// *Network* fault: a symmetric partition. Nodes whose bit is set
    /// in `group` exchange no messages with the rest of the cluster in
    /// either direction for `duration_us` of virtual time. The spec's
    /// `node` field is ignored (conventionally 0): the target is the
    /// group boundary, not a single node.
    PartitionSym {
        /// Bitmask of partitioned node indices (bit `i` = node `i`).
        group: u64,
        /// How long the partition lasts, in virtual µs.
        duration_us: f64,
    },
    /// *Network* fault: an asymmetric partition. Messages *from* nodes
    /// in `group` to the rest of the cluster are lost while the reverse
    /// direction still delivers — the classic one-way failure that
    /// makes naive failure detectors disagree.
    PartitionAsym {
        /// Bitmask of node indices whose outbound messages are lost.
        group: u64,
        /// How long the asymmetry lasts, in virtual µs.
        duration_us: f64,
    },
    /// *Network* fault: messages crossing the `group` boundary (either
    /// direction) are delayed by `delay_us`. Probes that cannot finish
    /// their round trip inside the prober's timeout read as failures,
    /// so sustained delay manufactures false suspicion.
    MsgDelay {
        /// Bitmask of node indices on the slow side of the boundary.
        group: u64,
        /// Added one-way latency while the window lasts, in µs.
        delay_us: f64,
        /// How long the delay window lasts, in virtual µs.
        duration_us: f64,
    },
    /// *Network* fault: messages crossing the `group` boundary are
    /// dropped independently with probability `loss`, drawn from the
    /// consuming layer's seeded stream.
    MsgLoss {
        /// Bitmask of node indices on the lossy side of the boundary.
        group: u64,
        /// Per-message drop probability in `[0, 1]`.
        loss: f64,
        /// How long the loss window lasts, in virtual µs.
        duration_us: f64,
    },
}

impl FaultKind {
    /// Stable lower-case identifier used in traces, telemetry event
    /// details and the chaos CLI output.
    pub fn id(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash => "node_crash",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::DmaTimeout => "dma_timeout",
            FaultKind::PartialReconfigFail => "partial_reconfig_fail",
            FaultKind::TransientKernelError => "transient_kernel_error",
            FaultKind::MemoryEcc => "memory_ecc",
            FaultKind::VfUnplug { .. } => "vf_unplug",
            FaultKind::SlowNode { .. } => "slow_node",
            FaultKind::GrayLink { .. } => "gray_link",
            FaultKind::VfCreep { .. } => "vf_creep",
            FaultKind::PartitionSym { .. } => "partition_sym",
            FaultKind::PartitionAsym { .. } => "partition_asym",
            FaultKind::MsgDelay { .. } => "msg_delay",
            FaultKind::MsgLoss { .. } => "msg_loss",
        }
    }

    /// Whether the fault is transient: it hits one operation and a
    /// retry can succeed. Non-transient faults change the node state
    /// for the rest of the run (crash, accelerator loss, VF loss).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FaultKind::DmaTimeout | FaultKind::TransientKernelError | FaultKind::MemoryEcc
        )
    }

    /// Whether the fault is *gray*: it never raises a typed error,
    /// never fires through a [`crate::FaultInjector`] operation, and is
    /// invisible to retry/quarantine recovery. Gray faults only show up
    /// as silently inflated latencies, so the sole countermeasure is
    /// online detection (the `everest-health` closed loop).
    pub fn is_gray(&self) -> bool {
        matches!(
            self,
            FaultKind::SlowNode { .. } | FaultKind::GrayLink { .. } | FaultKind::VfCreep { .. }
        )
    }

    /// Whether the fault is a *network* fault: it targets a group
    /// boundary rather than a node, never fires through a per-node
    /// [`crate::FaultInjector`], and is consumed only by the
    /// `everest-cluster` connectivity model (membership probes and
    /// dispatch gating). Network faults raise no device error; their
    /// entire effect is on who can talk to whom.
    pub fn is_network(&self) -> bool {
        matches!(
            self,
            FaultKind::PartitionSym { .. }
                | FaultKind::PartitionAsym { .. }
                | FaultKind::MsgDelay { .. }
                | FaultKind::MsgLoss { .. }
        )
    }

    /// Extra parameters rendered into [`FaultSpec::describe`] beyond
    /// the kind id. Only network kinds carry a detail (the group
    /// bitmask and window length); per-node kinds render `None`, which
    /// keeps every pre-0.7.0 trace byte-identical.
    pub fn detail(&self) -> Option<String> {
        match self {
            FaultKind::PartitionSym { group, duration_us }
            | FaultKind::PartitionAsym { group, duration_us } => {
                Some(format!("group={group:#x} duration_us={duration_us:.3}"))
            }
            FaultKind::MsgDelay {
                group,
                delay_us,
                duration_us,
            } => Some(format!(
                "group={group:#x} delay_us={delay_us:.3} duration_us={duration_us:.3}"
            )),
            FaultKind::MsgLoss {
                group,
                loss,
                duration_us,
            } => Some(format!(
                "group={group:#x} loss={loss:.3} duration_us={duration_us:.3}"
            )),
            FaultKind::NodeCrash
            | FaultKind::LinkDegrade { .. }
            | FaultKind::DmaTimeout
            | FaultKind::PartialReconfigFail
            | FaultKind::TransientKernelError
            | FaultKind::MemoryEcc
            | FaultKind::VfUnplug { .. }
            | FaultKind::SlowNode { .. }
            | FaultKind::GrayLink { .. }
            | FaultKind::VfCreep { .. } => None,
        }
    }
}

/// One fault: a kind, a target node and a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Virtual time at which the fault fires, in µs.
    pub at_us: f64,
    /// Target node index in the simulated cluster.
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Creates a fault.
    pub fn new(at_us: f64, node: usize, kind: FaultKind) -> FaultSpec {
        FaultSpec { at_us, node, kind }
    }

    /// Stable one-line rendering used in telemetry event details and
    /// chaos traces: `kind=<id> node=<n> at_us=<t>`, with the network
    /// kinds appending their group parameters.
    pub fn describe(&self) -> String {
        match self.kind.detail() {
            Some(detail) => format!(
                "kind={} node={} at_us={:.3} {}",
                self.kind.id(),
                self.node,
                self.at_us,
                detail
            ),
            None => format!(
                "kind={} node={} at_us={:.3}",
                self.kind.id(),
                self.node,
                self.at_us
            ),
        }
    }
}

/// A seeded sequence of faults, kept sorted by time (ties broken by
/// node index, then insertion order — fully deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random decision tied to this plan.
    pub seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults; the seed still parameterizes jitter).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault, keeping the plan sorted by `(at_us, node)`.
    pub fn with_fault(mut self, fault: FaultSpec) -> FaultPlan {
        self.push(fault);
        self
    }

    /// Adds a fault in place, keeping the plan sorted by `(at_us, node)`.
    pub fn push(&mut self, fault: FaultSpec) {
        let pos = self
            .faults
            .partition_point(|f| (f.at_us, f.node) <= (fault.at_us, fault.node));
        self.faults.insert(pos, fault);
    }

    /// The faults, sorted by time.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan carries no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Convenience: the single pre-planned node death the runtime's
    /// legacy `run_with_failure` API modelled.
    pub fn single_node_crash(seed: u64, node: usize, at_us: f64) -> FaultPlan {
        FaultPlan::new(seed).with_fault(FaultSpec::new(at_us, node, FaultKind::NodeCrash))
    }

    /// Synthesizes a random chaos campaign: `count` faults drawn
    /// uniformly over `[0, horizon_us)` against `nodes` nodes, mixing
    /// every fault kind. Entirely determined by `seed`.
    ///
    /// At most one `NodeCrash` is drawn per campaign so that plans stay
    /// survivable on small clusters; the remaining draws are spread
    /// over the recoverable kinds.
    pub fn random_campaign(seed: u64, nodes: usize, horizon_us: f64, count: usize) -> FaultPlan {
        let mut rng = DetRng::new(seed).fork(0xCA05);
        let mut plan = FaultPlan::new(seed);
        if nodes == 0 || horizon_us <= 0.0 {
            return plan;
        }
        let mut crashed = false;
        for _ in 0..count {
            let at_us = rng.range_f64(0.05 * horizon_us, 0.95 * horizon_us);
            let node = rng.index(nodes);
            let kind = match rng.index(if crashed { 5 } else { 6 }) {
                0 => FaultKind::TransientKernelError,
                1 => FaultKind::DmaTimeout,
                2 => FaultKind::MemoryEcc,
                3 => FaultKind::LinkDegrade {
                    factor: 1.0 + rng.range_f64(1.0, 7.0),
                    duration_us: rng.range_f64(0.05, 0.2) * horizon_us,
                },
                4 => FaultKind::VfUnplug {
                    vf: rng.index(4) as u32,
                },
                _ => {
                    crashed = true;
                    FaultKind::NodeCrash
                }
            };
            plan.push(FaultSpec::new(at_us, node, kind));
        }
        plan
    }

    /// Synthesizes a random *gray* campaign: silent degradations only
    /// ([`FaultKind::SlowNode`], [`FaultKind::GrayLink`],
    /// [`FaultKind::VfCreep`]), never a typed error. The first fault is
    /// always a strong long-lived `SlowNode` straggler starting near
    /// `0.02 * horizon_us`, so every campaign contains at least one
    /// degradation a health monitor must be able to catch. Entirely
    /// determined by `seed`.
    pub fn random_gray_campaign(
        seed: u64,
        nodes: usize,
        horizon_us: f64,
        count: usize,
    ) -> FaultPlan {
        let mut rng = DetRng::new(seed).fork(0x6AA7);
        let mut plan = FaultPlan::new(seed);
        if nodes == 0 || horizon_us <= 0.0 || count == 0 {
            return plan;
        }
        let straggler = rng.index(nodes);
        plan.push(FaultSpec::new(
            0.02 * horizon_us,
            straggler,
            FaultKind::SlowNode {
                factor: rng.range_f64(3.0, 6.0),
                duration_us: horizon_us,
            },
        ));
        for _ in 1..count {
            let at_us = rng.range_f64(0.05 * horizon_us, 0.6 * horizon_us);
            let node = rng.index(nodes);
            let kind = match rng.index(3) {
                0 => FaultKind::SlowNode {
                    factor: rng.range_f64(1.5, 3.0),
                    duration_us: rng.range_f64(0.2, 0.5) * horizon_us,
                },
                1 => FaultKind::GrayLink {
                    factor: rng.range_f64(2.0, 8.0),
                    duration_us: rng.range_f64(0.2, 0.6) * horizon_us,
                },
                _ => FaultKind::VfCreep {
                    per_ms: rng.range_f64(0.02, 0.1),
                },
            };
            plan.push(FaultSpec::new(at_us, node, kind));
        }
        plan
    }

    /// Synthesizes a random *partition* campaign: `cycles` back-to-back
    /// partition/heal cycles over `[0, horizon_us)`, alternating
    /// symmetric and asymmetric cuts, each optionally chased by a
    /// message-delay or message-loss window against the same group.
    /// Every cut isolates a strict minority (1..=nodes/2 nodes), so the
    /// remainder always retains quorum and shard failover can proceed.
    /// Entirely determined by `seed`.
    pub fn random_partition_campaign(
        seed: u64,
        nodes: usize,
        horizon_us: f64,
        cycles: usize,
    ) -> FaultPlan {
        let mut rng = DetRng::new(seed).fork(0x9A2717);
        let mut plan = FaultPlan::new(seed);
        if nodes < 2 || horizon_us <= 0.0 || cycles == 0 {
            return plan;
        }
        let slot = horizon_us / cycles as f64;
        let maskable = nodes.min(64);
        for cycle in 0..cycles {
            let base = cycle as f64 * slot;
            let cut = 1 + rng.index((maskable / 2).max(1));
            let mut group = 0u64;
            while (group.count_ones() as usize) < cut {
                group |= 1u64 << rng.index(maskable);
            }
            let at_us = base + rng.range_f64(0.1, 0.25) * slot;
            let duration_us = rng.range_f64(0.25, 0.45) * slot;
            let kind = if cycle % 2 == 0 {
                FaultKind::PartitionSym { group, duration_us }
            } else {
                FaultKind::PartitionAsym { group, duration_us }
            };
            plan.push(FaultSpec::new(at_us, 0, kind));
            let tail_at = base + rng.range_f64(0.72, 0.8) * slot;
            let tail_len = rng.range_f64(0.08, 0.15) * slot;
            match rng.index(3) {
                0 => plan.push(FaultSpec::new(
                    tail_at,
                    0,
                    FaultKind::MsgDelay {
                        group,
                        delay_us: rng.range_f64(400.0, 1_500.0),
                        duration_us: tail_len,
                    },
                )),
                1 => plan.push(FaultSpec::new(
                    tail_at,
                    0,
                    FaultKind::MsgLoss {
                        group,
                        loss: rng.range_f64(0.3, 0.9),
                        duration_us: tail_len,
                    },
                )),
                _ => {}
            }
        }
        plan
    }

    /// The jitter/backoff substream tied to this plan. Forked from the
    /// seed so campaign synthesis and recovery jitter never share draws.
    pub fn jitter_rng(&self) -> DetRng {
        DetRng::new(self.seed).fork(0x1177E5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_stay_sorted() {
        let plan = FaultPlan::new(1)
            .with_fault(FaultSpec::new(300.0, 1, FaultKind::DmaTimeout))
            .with_fault(FaultSpec::new(100.0, 2, FaultKind::NodeCrash))
            .with_fault(FaultSpec::new(200.0, 0, FaultKind::MemoryEcc));
        let times: Vec<f64> = plan.faults().iter().map(|f| f.at_us).collect();
        assert_eq!(times, vec![100.0, 200.0, 300.0]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn campaigns_replay_exactly() {
        let a = FaultPlan::random_campaign(42, 4, 100_000.0, 8);
        let b = FaultPlan::random_campaign(42, 4, 100_000.0, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let c = FaultPlan::random_campaign(43, 4, 100_000.0, 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn campaigns_crash_at_most_one_node() {
        for seed in 0..32 {
            let plan = FaultPlan::random_campaign(seed, 4, 50_000.0, 10);
            let crashes = plan
                .faults()
                .iter()
                .filter(|f| f.kind == FaultKind::NodeCrash)
                .count();
            assert!(crashes <= 1, "seed {seed} drew {crashes} crashes");
        }
    }

    #[test]
    fn describe_is_stable() {
        let f = FaultSpec::new(1234.5, 2, FaultKind::TransientKernelError);
        assert_eq!(
            f.describe(),
            "kind=transient_kernel_error node=2 at_us=1234.500"
        );
    }

    #[test]
    fn empty_targets_yield_empty_plans() {
        assert!(FaultPlan::random_campaign(1, 0, 1000.0, 5).is_empty());
        assert!(FaultPlan::random_campaign(1, 3, 0.0, 5).is_empty());
        assert!(FaultPlan::random_gray_campaign(1, 0, 1000.0, 5).is_empty());
        assert!(FaultPlan::random_gray_campaign(1, 3, 1000.0, 0).is_empty());
    }

    #[test]
    fn gray_campaigns_are_all_gray_and_anchored() {
        for seed in 0..16 {
            let plan = FaultPlan::random_gray_campaign(seed, 4, 60_000.0, 6);
            assert_eq!(plan.len(), 6);
            assert!(plan.faults().iter().all(|f| f.kind.is_gray()));
            assert!(plan.faults().iter().all(|f| !f.kind.is_transient()));
            // The anchored straggler: earliest fault, strong and long.
            let first = &plan.faults()[0];
            assert_eq!(first.at_us, 0.02 * 60_000.0);
            match first.kind {
                FaultKind::SlowNode {
                    factor,
                    duration_us,
                } => {
                    assert!(factor >= 3.0, "anchor factor {factor}");
                    assert_eq!(duration_us, 60_000.0);
                }
                ref other => panic!("anchor must be SlowNode, got {other:?}"),
            }
        }
        let a = FaultPlan::random_gray_campaign(9, 4, 60_000.0, 6);
        let b = FaultPlan::random_gray_campaign(9, 4, 60_000.0, 6);
        assert_eq!(a, b, "gray campaigns must replay exactly");
    }

    #[test]
    fn partition_campaigns_cut_minorities_and_replay() {
        for seed in 0..16 {
            let plan = FaultPlan::random_partition_campaign(seed, 4, 120_000.0, 3);
            assert!(plan.len() >= 3, "seed {seed}: at least one cut per cycle");
            assert!(plan.faults().iter().all(|f| f.kind.is_network()));
            assert!(plan.faults().iter().all(|f| !f.kind.is_transient()));
            assert!(plan.faults().iter().all(|f| !f.kind.is_gray()));
            for f in plan.faults() {
                if let FaultKind::PartitionSym { group, .. }
                | FaultKind::PartitionAsym { group, .. } = f.kind
                {
                    let cut = group.count_ones() as usize;
                    assert!(
                        (1..=2).contains(&cut),
                        "seed {seed}: cut {cut} of 4 is not a strict minority"
                    );
                }
            }
        }
        let a = FaultPlan::random_partition_campaign(9, 4, 120_000.0, 3);
        let b = FaultPlan::random_partition_campaign(9, 4, 120_000.0, 3);
        assert_eq!(a, b, "partition campaigns must replay exactly");
        assert!(FaultPlan::random_partition_campaign(1, 1, 1000.0, 2).is_empty());
        assert!(FaultPlan::random_partition_campaign(1, 4, 0.0, 2).is_empty());
        assert!(FaultPlan::random_partition_campaign(1, 4, 1000.0, 0).is_empty());
    }

    #[test]
    fn network_kinds_describe_their_group() {
        let f = FaultSpec::new(
            500.0,
            0,
            FaultKind::PartitionSym {
                group: 0b0011,
                duration_us: 2_000.0,
            },
        );
        assert_eq!(
            f.describe(),
            "kind=partition_sym node=0 at_us=500.000 group=0x3 duration_us=2000.000"
        );
        assert!(FaultKind::MsgLoss {
            group: 1,
            loss: 0.5,
            duration_us: 10.0
        }
        .is_network());
        assert!(!FaultKind::NodeCrash.is_network());
    }

    #[test]
    fn typed_kinds_are_not_gray() {
        assert!(!FaultKind::NodeCrash.is_gray());
        assert!(!FaultKind::MemoryEcc.is_gray());
        assert!(FaultKind::SlowNode {
            factor: 2.0,
            duration_us: 1.0
        }
        .is_gray());
        assert_eq!(
            FaultKind::GrayLink {
                factor: 2.0,
                duration_us: 1.0
            }
            .id(),
            "gray_link"
        );
        assert_eq!(FaultKind::VfCreep { per_ms: 0.1 }.id(), "vf_creep");
    }
}
