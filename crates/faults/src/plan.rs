//! Seeded, fully deterministic fault plans.
//!
//! A [`FaultPlan`] is a list of timed [`FaultSpec`]s plus the seed that
//! parameterizes every random decision made while executing the plan
//! (backoff jitter, campaign synthesis). Two runs of the same plan are
//! required to produce identical behaviour — the scheduler, platform
//! and CLI layers all derive their randomness from the plan seed and
//! virtual time only, never from wall clocks.

use crate::rng::DetRng;

/// What goes wrong. Targets are expressed against the simulated
/// cluster: `node` lives on the enclosing [`FaultSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The node dies and never returns (fail-stop).
    NodeCrash,
    /// The links touching the node degrade: transfers pay `factor`×
    /// their healthy cost for `duration_us` of virtual time.
    LinkDegrade {
        /// Cost multiplier while the flap lasts (≥ 1).
        factor: f64,
        /// How long the degradation lasts, in virtual µs.
        duration_us: f64,
    },
    /// A DMA/sync operation times out; the operation in flight fails
    /// and must be retried.
    DmaTimeout,
    /// Partial reconfiguration of the node's FPGA fails; the
    /// accelerator is lost until repaired (permanent within one run).
    PartialReconfigFail,
    /// A kernel launch hits a transient error (SEU, protocol hiccup);
    /// retrying usually succeeds.
    TransientKernelError,
    /// A memory ECC event: correctable, but the scrub stalls whatever
    /// was executing on the node.
    MemoryEcc,
    /// A virtual function is surprise hot-unplugged from its VM.
    VfUnplug {
        /// VF index on the node's physical function.
        vf: u32,
    },
    /// *Gray* fault: the node's compute throughput silently drops.
    /// Everything executing there takes `factor`× longer for
    /// `duration_us` of virtual time, but no error is ever raised —
    /// the straggler is only catchable by watching achieved latency.
    SlowNode {
        /// Compute-time multiplier while the slowdown lasts (≥ 1).
        factor: f64,
        /// How long the slowdown lasts, in virtual µs.
        duration_us: f64,
    },
    /// *Gray* fault: a lossy, partially partitioned link. Transfers
    /// touching the node silently pay `factor`× their healthy cost;
    /// unlike [`FaultKind::LinkDegrade`] the planner is never told, so
    /// only byte-counter/latency detection can see it.
    GrayLink {
        /// Transfer-cost multiplier while the loss lasts (≥ 1).
        factor: f64,
        /// How long the partition lasts, in virtual µs.
        duration_us: f64,
    },
    /// *Gray* fault: the node's FPGA virtual function degrades
    /// progressively — accelerator latency inflates by `per_ms` per
    /// virtual millisecond since onset, without ever erroring.
    VfCreep {
        /// Added latency fraction per virtual millisecond since onset.
        per_ms: f64,
    },
}

impl FaultKind {
    /// Stable lower-case identifier used in traces, telemetry event
    /// details and the chaos CLI output.
    pub fn id(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash => "node_crash",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::DmaTimeout => "dma_timeout",
            FaultKind::PartialReconfigFail => "partial_reconfig_fail",
            FaultKind::TransientKernelError => "transient_kernel_error",
            FaultKind::MemoryEcc => "memory_ecc",
            FaultKind::VfUnplug { .. } => "vf_unplug",
            FaultKind::SlowNode { .. } => "slow_node",
            FaultKind::GrayLink { .. } => "gray_link",
            FaultKind::VfCreep { .. } => "vf_creep",
        }
    }

    /// Whether the fault is transient: it hits one operation and a
    /// retry can succeed. Non-transient faults change the node state
    /// for the rest of the run (crash, accelerator loss, VF loss).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FaultKind::DmaTimeout | FaultKind::TransientKernelError | FaultKind::MemoryEcc
        )
    }

    /// Whether the fault is *gray*: it never raises a typed error,
    /// never fires through a [`crate::FaultInjector`] operation, and is
    /// invisible to retry/quarantine recovery. Gray faults only show up
    /// as silently inflated latencies, so the sole countermeasure is
    /// online detection (the `everest-health` closed loop).
    pub fn is_gray(&self) -> bool {
        matches!(
            self,
            FaultKind::SlowNode { .. } | FaultKind::GrayLink { .. } | FaultKind::VfCreep { .. }
        )
    }
}

/// One fault: a kind, a target node and a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Virtual time at which the fault fires, in µs.
    pub at_us: f64,
    /// Target node index in the simulated cluster.
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Creates a fault.
    pub fn new(at_us: f64, node: usize, kind: FaultKind) -> FaultSpec {
        FaultSpec { at_us, node, kind }
    }

    /// Stable one-line rendering used in telemetry event details and
    /// chaos traces: `kind=<id> node=<n> at_us=<t>`.
    pub fn describe(&self) -> String {
        format!(
            "kind={} node={} at_us={:.3}",
            self.kind.id(),
            self.node,
            self.at_us
        )
    }
}

/// A seeded sequence of faults, kept sorted by time (ties broken by
/// node index, then insertion order — fully deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random decision tied to this plan.
    pub seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults; the seed still parameterizes jitter).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault, keeping the plan sorted by `(at_us, node)`.
    pub fn with_fault(mut self, fault: FaultSpec) -> FaultPlan {
        self.push(fault);
        self
    }

    /// Adds a fault in place, keeping the plan sorted by `(at_us, node)`.
    pub fn push(&mut self, fault: FaultSpec) {
        let pos = self
            .faults
            .partition_point(|f| (f.at_us, f.node) <= (fault.at_us, fault.node));
        self.faults.insert(pos, fault);
    }

    /// The faults, sorted by time.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan carries no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Convenience: the single pre-planned node death the runtime's
    /// legacy `run_with_failure` API modelled.
    pub fn single_node_crash(seed: u64, node: usize, at_us: f64) -> FaultPlan {
        FaultPlan::new(seed).with_fault(FaultSpec::new(at_us, node, FaultKind::NodeCrash))
    }

    /// Synthesizes a random chaos campaign: `count` faults drawn
    /// uniformly over `[0, horizon_us)` against `nodes` nodes, mixing
    /// every fault kind. Entirely determined by `seed`.
    ///
    /// At most one `NodeCrash` is drawn per campaign so that plans stay
    /// survivable on small clusters; the remaining draws are spread
    /// over the recoverable kinds.
    pub fn random_campaign(seed: u64, nodes: usize, horizon_us: f64, count: usize) -> FaultPlan {
        let mut rng = DetRng::new(seed).fork(0xCA05);
        let mut plan = FaultPlan::new(seed);
        if nodes == 0 || horizon_us <= 0.0 {
            return plan;
        }
        let mut crashed = false;
        for _ in 0..count {
            let at_us = rng.range_f64(0.05 * horizon_us, 0.95 * horizon_us);
            let node = rng.index(nodes);
            let kind = match rng.index(if crashed { 5 } else { 6 }) {
                0 => FaultKind::TransientKernelError,
                1 => FaultKind::DmaTimeout,
                2 => FaultKind::MemoryEcc,
                3 => FaultKind::LinkDegrade {
                    factor: 1.0 + rng.range_f64(1.0, 7.0),
                    duration_us: rng.range_f64(0.05, 0.2) * horizon_us,
                },
                4 => FaultKind::VfUnplug {
                    vf: rng.index(4) as u32,
                },
                _ => {
                    crashed = true;
                    FaultKind::NodeCrash
                }
            };
            plan.push(FaultSpec::new(at_us, node, kind));
        }
        plan
    }

    /// Synthesizes a random *gray* campaign: silent degradations only
    /// ([`FaultKind::SlowNode`], [`FaultKind::GrayLink`],
    /// [`FaultKind::VfCreep`]), never a typed error. The first fault is
    /// always a strong long-lived `SlowNode` straggler starting near
    /// `0.02 * horizon_us`, so every campaign contains at least one
    /// degradation a health monitor must be able to catch. Entirely
    /// determined by `seed`.
    pub fn random_gray_campaign(
        seed: u64,
        nodes: usize,
        horizon_us: f64,
        count: usize,
    ) -> FaultPlan {
        let mut rng = DetRng::new(seed).fork(0x6AA7);
        let mut plan = FaultPlan::new(seed);
        if nodes == 0 || horizon_us <= 0.0 || count == 0 {
            return plan;
        }
        let straggler = rng.index(nodes);
        plan.push(FaultSpec::new(
            0.02 * horizon_us,
            straggler,
            FaultKind::SlowNode {
                factor: rng.range_f64(3.0, 6.0),
                duration_us: horizon_us,
            },
        ));
        for _ in 1..count {
            let at_us = rng.range_f64(0.05 * horizon_us, 0.6 * horizon_us);
            let node = rng.index(nodes);
            let kind = match rng.index(3) {
                0 => FaultKind::SlowNode {
                    factor: rng.range_f64(1.5, 3.0),
                    duration_us: rng.range_f64(0.2, 0.5) * horizon_us,
                },
                1 => FaultKind::GrayLink {
                    factor: rng.range_f64(2.0, 8.0),
                    duration_us: rng.range_f64(0.2, 0.6) * horizon_us,
                },
                _ => FaultKind::VfCreep {
                    per_ms: rng.range_f64(0.02, 0.1),
                },
            };
            plan.push(FaultSpec::new(at_us, node, kind));
        }
        plan
    }

    /// The jitter/backoff substream tied to this plan. Forked from the
    /// seed so campaign synthesis and recovery jitter never share draws.
    pub fn jitter_rng(&self) -> DetRng {
        DetRng::new(self.seed).fork(0x1177E5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_stay_sorted() {
        let plan = FaultPlan::new(1)
            .with_fault(FaultSpec::new(300.0, 1, FaultKind::DmaTimeout))
            .with_fault(FaultSpec::new(100.0, 2, FaultKind::NodeCrash))
            .with_fault(FaultSpec::new(200.0, 0, FaultKind::MemoryEcc));
        let times: Vec<f64> = plan.faults().iter().map(|f| f.at_us).collect();
        assert_eq!(times, vec![100.0, 200.0, 300.0]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn campaigns_replay_exactly() {
        let a = FaultPlan::random_campaign(42, 4, 100_000.0, 8);
        let b = FaultPlan::random_campaign(42, 4, 100_000.0, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let c = FaultPlan::random_campaign(43, 4, 100_000.0, 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn campaigns_crash_at_most_one_node() {
        for seed in 0..32 {
            let plan = FaultPlan::random_campaign(seed, 4, 50_000.0, 10);
            let crashes = plan
                .faults()
                .iter()
                .filter(|f| f.kind == FaultKind::NodeCrash)
                .count();
            assert!(crashes <= 1, "seed {seed} drew {crashes} crashes");
        }
    }

    #[test]
    fn describe_is_stable() {
        let f = FaultSpec::new(1234.5, 2, FaultKind::TransientKernelError);
        assert_eq!(
            f.describe(),
            "kind=transient_kernel_error node=2 at_us=1234.500"
        );
    }

    #[test]
    fn empty_targets_yield_empty_plans() {
        assert!(FaultPlan::random_campaign(1, 0, 1000.0, 5).is_empty());
        assert!(FaultPlan::random_campaign(1, 3, 0.0, 5).is_empty());
        assert!(FaultPlan::random_gray_campaign(1, 0, 1000.0, 5).is_empty());
        assert!(FaultPlan::random_gray_campaign(1, 3, 1000.0, 0).is_empty());
    }

    #[test]
    fn gray_campaigns_are_all_gray_and_anchored() {
        for seed in 0..16 {
            let plan = FaultPlan::random_gray_campaign(seed, 4, 60_000.0, 6);
            assert_eq!(plan.len(), 6);
            assert!(plan.faults().iter().all(|f| f.kind.is_gray()));
            assert!(plan.faults().iter().all(|f| !f.kind.is_transient()));
            // The anchored straggler: earliest fault, strong and long.
            let first = &plan.faults()[0];
            assert_eq!(first.at_us, 0.02 * 60_000.0);
            match first.kind {
                FaultKind::SlowNode {
                    factor,
                    duration_us,
                } => {
                    assert!(factor >= 3.0, "anchor factor {factor}");
                    assert_eq!(duration_us, 60_000.0);
                }
                ref other => panic!("anchor must be SlowNode, got {other:?}"),
            }
        }
        let a = FaultPlan::random_gray_campaign(9, 4, 60_000.0, 6);
        let b = FaultPlan::random_gray_campaign(9, 4, 60_000.0, 6);
        assert_eq!(a, b, "gray campaigns must replay exactly");
    }

    #[test]
    fn typed_kinds_are_not_gray() {
        assert!(!FaultKind::NodeCrash.is_gray());
        assert!(!FaultKind::MemoryEcc.is_gray());
        assert!(FaultKind::SlowNode {
            factor: 2.0,
            duration_us: 1.0
        }
        .is_gray());
        assert_eq!(
            FaultKind::GrayLink {
                factor: 2.0,
                duration_us: 1.0
            }
            .id(),
            "gray_link"
        );
        assert_eq!(FaultKind::VfCreep { per_ms: 0.1 }.id(), "vf_creep");
    }
}
