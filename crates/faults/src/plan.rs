//! Seeded, fully deterministic fault plans.
//!
//! A [`FaultPlan`] is a list of timed [`FaultSpec`]s plus the seed that
//! parameterizes every random decision made while executing the plan
//! (backoff jitter, campaign synthesis). Two runs of the same plan are
//! required to produce identical behaviour — the scheduler, platform
//! and CLI layers all derive their randomness from the plan seed and
//! virtual time only, never from wall clocks.

use crate::rng::DetRng;

/// What goes wrong. Targets are expressed against the simulated
/// cluster: `node` lives on the enclosing [`FaultSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The node dies and never returns (fail-stop).
    NodeCrash,
    /// The links touching the node degrade: transfers pay `factor`×
    /// their healthy cost for `duration_us` of virtual time.
    LinkDegrade {
        /// Cost multiplier while the flap lasts (≥ 1).
        factor: f64,
        /// How long the degradation lasts, in virtual µs.
        duration_us: f64,
    },
    /// A DMA/sync operation times out; the operation in flight fails
    /// and must be retried.
    DmaTimeout,
    /// Partial reconfiguration of the node's FPGA fails; the
    /// accelerator is lost until repaired (permanent within one run).
    PartialReconfigFail,
    /// A kernel launch hits a transient error (SEU, protocol hiccup);
    /// retrying usually succeeds.
    TransientKernelError,
    /// A memory ECC event: correctable, but the scrub stalls whatever
    /// was executing on the node.
    MemoryEcc,
    /// A virtual function is surprise hot-unplugged from its VM.
    VfUnplug {
        /// VF index on the node's physical function.
        vf: u32,
    },
}

impl FaultKind {
    /// Stable lower-case identifier used in traces, telemetry event
    /// details and the chaos CLI output.
    pub fn id(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash => "node_crash",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::DmaTimeout => "dma_timeout",
            FaultKind::PartialReconfigFail => "partial_reconfig_fail",
            FaultKind::TransientKernelError => "transient_kernel_error",
            FaultKind::MemoryEcc => "memory_ecc",
            FaultKind::VfUnplug { .. } => "vf_unplug",
        }
    }

    /// Whether the fault is transient: it hits one operation and a
    /// retry can succeed. Non-transient faults change the node state
    /// for the rest of the run (crash, accelerator loss, VF loss).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FaultKind::DmaTimeout | FaultKind::TransientKernelError | FaultKind::MemoryEcc
        )
    }
}

/// One fault: a kind, a target node and a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Virtual time at which the fault fires, in µs.
    pub at_us: f64,
    /// Target node index in the simulated cluster.
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Creates a fault.
    pub fn new(at_us: f64, node: usize, kind: FaultKind) -> FaultSpec {
        FaultSpec { at_us, node, kind }
    }

    /// Stable one-line rendering used in telemetry event details and
    /// chaos traces: `kind=<id> node=<n> at_us=<t>`.
    pub fn describe(&self) -> String {
        format!(
            "kind={} node={} at_us={:.3}",
            self.kind.id(),
            self.node,
            self.at_us
        )
    }
}

/// A seeded sequence of faults, kept sorted by time (ties broken by
/// node index, then insertion order — fully deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random decision tied to this plan.
    pub seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults; the seed still parameterizes jitter).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault, keeping the plan sorted by `(at_us, node)`.
    pub fn with_fault(mut self, fault: FaultSpec) -> FaultPlan {
        self.push(fault);
        self
    }

    /// Adds a fault in place, keeping the plan sorted by `(at_us, node)`.
    pub fn push(&mut self, fault: FaultSpec) {
        let pos = self
            .faults
            .partition_point(|f| (f.at_us, f.node) <= (fault.at_us, fault.node));
        self.faults.insert(pos, fault);
    }

    /// The faults, sorted by time.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan carries no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Convenience: the single pre-planned node death the runtime's
    /// legacy `run_with_failure` API modelled.
    pub fn single_node_crash(seed: u64, node: usize, at_us: f64) -> FaultPlan {
        FaultPlan::new(seed).with_fault(FaultSpec::new(at_us, node, FaultKind::NodeCrash))
    }

    /// Synthesizes a random chaos campaign: `count` faults drawn
    /// uniformly over `[0, horizon_us)` against `nodes` nodes, mixing
    /// every fault kind. Entirely determined by `seed`.
    ///
    /// At most one `NodeCrash` is drawn per campaign so that plans stay
    /// survivable on small clusters; the remaining draws are spread
    /// over the recoverable kinds.
    pub fn random_campaign(seed: u64, nodes: usize, horizon_us: f64, count: usize) -> FaultPlan {
        let mut rng = DetRng::new(seed).fork(0xCA05);
        let mut plan = FaultPlan::new(seed);
        if nodes == 0 || horizon_us <= 0.0 {
            return plan;
        }
        let mut crashed = false;
        for _ in 0..count {
            let at_us = rng.range_f64(0.05 * horizon_us, 0.95 * horizon_us);
            let node = rng.index(nodes);
            let kind = match rng.index(if crashed { 5 } else { 6 }) {
                0 => FaultKind::TransientKernelError,
                1 => FaultKind::DmaTimeout,
                2 => FaultKind::MemoryEcc,
                3 => FaultKind::LinkDegrade {
                    factor: 1.0 + rng.range_f64(1.0, 7.0),
                    duration_us: rng.range_f64(0.05, 0.2) * horizon_us,
                },
                4 => FaultKind::VfUnplug {
                    vf: rng.index(4) as u32,
                },
                _ => {
                    crashed = true;
                    FaultKind::NodeCrash
                }
            };
            plan.push(FaultSpec::new(at_us, node, kind));
        }
        plan
    }

    /// The jitter/backoff substream tied to this plan. Forked from the
    /// seed so campaign synthesis and recovery jitter never share draws.
    pub fn jitter_rng(&self) -> DetRng {
        DetRng::new(self.seed).fork(0x1177E5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_stay_sorted() {
        let plan = FaultPlan::new(1)
            .with_fault(FaultSpec::new(300.0, 1, FaultKind::DmaTimeout))
            .with_fault(FaultSpec::new(100.0, 2, FaultKind::NodeCrash))
            .with_fault(FaultSpec::new(200.0, 0, FaultKind::MemoryEcc));
        let times: Vec<f64> = plan.faults().iter().map(|f| f.at_us).collect();
        assert_eq!(times, vec![100.0, 200.0, 300.0]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn campaigns_replay_exactly() {
        let a = FaultPlan::random_campaign(42, 4, 100_000.0, 8);
        let b = FaultPlan::random_campaign(42, 4, 100_000.0, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let c = FaultPlan::random_campaign(43, 4, 100_000.0, 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn campaigns_crash_at_most_one_node() {
        for seed in 0..32 {
            let plan = FaultPlan::random_campaign(seed, 4, 50_000.0, 10);
            let crashes = plan
                .faults()
                .iter()
                .filter(|f| f.kind == FaultKind::NodeCrash)
                .count();
            assert!(crashes <= 1, "seed {seed} drew {crashes} crashes");
        }
    }

    #[test]
    fn describe_is_stable() {
        let f = FaultSpec::new(1234.5, 2, FaultKind::TransientKernelError);
        assert_eq!(
            f.describe(),
            "kind=transient_kernel_error node=2 at_us=1234.500"
        );
    }

    #[test]
    fn empty_targets_yield_empty_plans() {
        assert!(FaultPlan::random_campaign(1, 0, 1000.0, 5).is_empty());
        assert!(FaultPlan::random_campaign(1, 3, 0.0, 5).is_empty());
    }
}
