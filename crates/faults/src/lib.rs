//! # everest-faults
//!
//! Deterministic fault injection and recovery primitives for the
//! EVEREST SDK reproduction.
//!
//! The paper's virtualized runtime (§VI) claims failure rescheduling
//! around node loss; a workflow SDK is only credible at production
//! scale when faults are first-class and recovery is *testable*. This
//! crate supplies the shared vocabulary every layer speaks:
//!
//! * [`FaultPlan`] / [`FaultSpec`] / [`FaultKind`] — seeded, timed
//!   fault campaigns: node crashes, link flaps, DMA/sync timeouts,
//!   partial-reconfiguration failures, transient kernel errors, memory
//!   ECC events, VF hot-unplugs — plus *gray* degradations (slow
//!   nodes, lossy links, creeping VF latency) that raise no error and
//!   are only catchable by online detection;
//! * [`FaultInjector`] — arms a plan against one node; platform
//!   operations ([`FaultOp`]) consult it and turn fired faults into
//!   typed errors or latency penalties;
//! * [`RetryPolicy`] — per-task retry budgets with deterministic
//!   exponential backoff + jitter;
//! * [`RecoveryStats`] — what recovery cost a run (retries, backoff
//!   time, FPGA→CPU degradations, quarantines, lineage re-execution);
//! * [`DetRng`] — the SplitMix64 stream everything draws from, so a
//!   seed replays a whole chaos campaign byte-identically.
//!
//! Every fired fault is also recorded to `everest-telemetry` (counter
//! `faults.injected`, event `faults.inject`); the stable names are
//! documented in `docs/OBSERVABILITY.md`, and the fault model itself in
//! `docs/RESILIENCE.md`.
//!
//! # Examples
//!
//! ```
//! use everest_faults::{FaultInjector, FaultKind, FaultOp, FaultPlan, FaultSpec};
//!
//! let plan = FaultPlan::new(42)
//!     .with_fault(FaultSpec::new(1_000.0, 0, FaultKind::TransientKernelError));
//! let injector = FaultInjector::for_node(plan, 0);
//! assert!(injector.fire(FaultOp::Kernel, 500.0).is_none()); // not due
//! let fault = injector.fire(FaultOp::Kernel, 1_500.0).unwrap();
//! assert_eq!(fault.kind.id(), "transient_kernel_error");
//! assert!(injector.fire(FaultOp::Kernel, 1_500.0).is_none()); // fires once
//! ```

#![warn(clippy::unwrap_used)]

pub mod inject;
pub mod plan;
pub mod retry;
pub mod rng;

pub use inject::{FaultInjector, FaultOp};
pub use plan::{FaultKind, FaultPlan, FaultSpec};
pub use retry::{RecoveryStats, RetryPolicy};
pub use rng::DetRng;
