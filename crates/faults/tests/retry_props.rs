//! Property tests for the `RetryPolicy` backoff substream contract
//! (see `crates/faults/src/retry.rs` rustdoc): sequences are
//! reproducible from the plan seed and every attempt is monotonically
//! bounded by the cap.

use proptest::prelude::*;

use everest_faults::{FaultPlan, RetryPolicy};

fn policy(base: f64, multiplier: f64, jitter: f64, cap: f64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_backoff_us: base,
        multiplier,
        jitter_frac: jitter,
        max_backoff_us: cap,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same plan seed → the same backoff sequence, draw for draw.
    #[test]
    fn backoff_sequences_are_reproducible(
        seed in any::<u64>(),
        base in 10.0f64..500.0,
        jitter in 0.0f64..0.5,
        attempts in 1usize..12,
    ) {
        let policy = policy(base, 2.0, jitter, 50_000.0);
        let mut a = FaultPlan::new(seed).jitter_rng();
        let mut b = FaultPlan::new(seed).jitter_rng();
        for attempt in 0..attempts as u32 {
            prop_assert_eq!(
                policy.backoff_us(attempt, &mut a),
                policy.backoff_us(attempt, &mut b)
            );
        }
    }

    /// Every jittered attempt stays within the jitter envelope of the
    /// exponential value and never exceeds the cap; the jitter-free
    /// envelope itself is monotone until it saturates at the cap.
    #[test]
    fn backoff_is_bounded_by_cap_and_envelope(
        seed in any::<u64>(),
        base in 10.0f64..500.0,
        multiplier in 1.0f64..3.0,
        jitter in 0.0f64..0.5,
        cap in 100.0f64..5_000.0,
    ) {
        let policy = policy(base, multiplier, jitter, cap);
        let mut rng = FaultPlan::new(seed).jitter_rng();
        let mut prev_envelope = 0.0f64;
        for attempt in 0..16u32 {
            let backoff = policy.backoff_us(attempt, &mut rng);
            prop_assert!(backoff <= cap, "attempt {}: {} > cap {}", attempt, backoff, cap);
            prop_assert!(backoff >= 0.0);
            let exp = base * multiplier.powi(attempt as i32);
            let envelope = (exp * (1.0 + jitter)).min(cap);
            prop_assert!(backoff <= envelope + 1e-9,
                "attempt {}: {} above jitter envelope {}", attempt, backoff, envelope);
            prop_assert!(envelope + 1e-9 >= prev_envelope,
                "envelope is monotone for multiplier >= 1");
            prev_envelope = envelope;
        }
        // The uncapped, jitter-free sequence is monotone non-decreasing
        // and its capped version saturates exactly at the cap.
        let exact = RetryPolicy { jitter_frac: 0.0, ..policy };
        let mut prev = 0.0f64;
        for attempt in 0..16u32 {
            let v = exact.backoff_us(attempt, &mut rng);
            prop_assert!(v + 1e-9 >= prev, "monotone until the cap");
            prop_assert!(v <= cap);
            prev = v;
        }
        prop_assert_eq!(
            exact.backoff_us(40, &mut rng),
            (base * multiplier.powi(40)).min(cap),
            "clamps exactly at the cap"
        );
    }
}
