//! Export sinks: human text tree, JSON lines, and Chrome `trace_event`
//! JSON.
//!
//! All three serialize snapshots of a [`Registry`], so concurrent
//! recording never tears an individual record in the export. JSON
//! is emitted with a small built-in writer (escaped strings, finite
//! numbers only) to keep this crate dependency-free; the Chrome trace
//! output is verified to round-trip through `serde_json` in tests.
//!
//! The formats are part of the observability contract documented in
//! `docs/OBSERVABILITY.md`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{ArgValue, EventRecord, Registry, SpanRecord};

/// Escapes `s` as JSON string contents (without surrounding quotes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite JSON number; non-finite values become 0 (JSON has
/// no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // Trim the noise: three decimals is sub-nanosecond for µs stamps.
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

fn json_arg(value: &ArgValue) -> String {
    match value {
        ArgValue::U64(v) => v.to_string(),
        ArgValue::F64(v) => json_f64(*v),
        ArgValue::Str(v) => format!("\"{}\"", json_escape(v)),
        ArgValue::Bool(v) => v.to_string(),
    }
}

fn json_args(args: &BTreeMap<String, ArgValue>) -> String {
    let fields: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_arg(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

impl Registry {
    /// Renders the registry as a human-readable report: the span tree
    /// (indented by nesting, one line per span with duration and args)
    /// followed by counters, gauges, histograms, monitors and the
    /// event tail.
    pub fn to_text(&self) -> String {
        let spans = self.spans();
        let counters = self.counters_snapshot();
        let gauges = self.gauges_snapshot();
        let monitors: Vec<(String, crate::monitor::Monitor)> = self
            .monitor_names()
            .into_iter()
            .filter_map(|name| self.monitor(&name).map(|m| (name, m)))
            .collect();
        let events: Vec<EventRecord> = self.events();

        let mut out = String::new();
        out.push_str("spans:\n");
        let mut children: BTreeMap<Option<u32>, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &spans {
            children.entry(s.parent).or_default().push(s);
        }
        fn emit(
            out: &mut String,
            children: &BTreeMap<Option<u32>, Vec<&SpanRecord>>,
            parent: Option<u32>,
            depth: usize,
        ) {
            let Some(list) = children.get(&parent) else {
                return;
            };
            for s in list {
                let dur = s
                    .duration_us()
                    .map(|d| format!("{d:.1} us"))
                    .unwrap_or_else(|| "open".to_string());
                let args = if s.args.is_empty() {
                    String::new()
                } else {
                    let rendered: Vec<String> =
                        s.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    format!("  [{}]", rendered.join(" "))
                };
                let _ = writeln!(
                    out,
                    "{:indent$}{} ({}){}",
                    "",
                    s.name,
                    dur,
                    args,
                    indent = depth * 2
                );
                emit(out, children, Some(s.id), depth + 1);
            }
        }
        emit(&mut out, &children, None, 1);

        if !counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &gauges {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        let histograms: Vec<String> = self.histogram_names();
        if !histograms.is_empty() {
            out.push_str("histograms:\n");
            for name in &histograms {
                if let Some(h) = self.histogram(name) {
                    let _ = writeln!(
                        out,
                        "  {name}: n={} mean={:.2} p50={:.2} p95={:.2} p99={:.2} min={:.2} max={:.2}",
                        h.count,
                        h.mean().unwrap_or(0.0),
                        h.p50().unwrap_or(0.0),
                        h.p95().unwrap_or(0.0),
                        h.p99().unwrap_or(0.0),
                        h.min,
                        h.max
                    );
                }
            }
        }
        if !monitors.is_empty() {
            out.push_str("monitors:\n");
            for (name, m) in &monitors {
                let _ = writeln!(
                    out,
                    "  {name}: n={} mean={:.2} last={:.2}",
                    m.count(),
                    m.mean().unwrap_or(0.0),
                    m.last().unwrap_or(0.0)
                );
            }
        }
        if !events.is_empty() {
            out.push_str("events:\n");
            for e in &events {
                let _ = writeln!(out, "  {:>12.1} us  {}  {}", e.ts_us, e.name, e.detail);
            }
        }
        out
    }

    /// Renders every record as one JSON object per line: spans
    /// (`"type":"span"`), counters, gauges, histograms, monitors and
    /// events. Machine-friendly and greppable.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for s in self.spans() {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"tid\":{},\"start_us\":{},\"dur_us\":{},\"args\":{}}}",
                s.id,
                s.parent.map_or("null".to_string(), |p| p.to_string()),
                json_escape(&s.name),
                s.tid,
                json_f64(s.start_us),
                s.duration_us().map_or("null".to_string(), json_f64),
                json_args(&s.args),
            );
        }
        for name in self.counter_names() {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(&name),
                self.counter(&name)
            );
        }
        for name in self.gauge_names() {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(&name),
                json_f64(self.gauge(&name).unwrap_or(0.0))
            );
        }
        for name in self.histogram_names() {
            if let Some(h) = self.histogram(&name) {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    json_escape(&name),
                    h.count,
                    json_f64(h.sum),
                    json_f64(h.min),
                    json_f64(h.max),
                    h.p50().map_or("null".to_string(), json_f64),
                    h.p95().map_or("null".to_string(), json_f64),
                    h.p99().map_or("null".to_string(), json_f64)
                );
            }
        }
        for name in self.monitor_names() {
            if let Some(m) = self.monitor(&name) {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"monitor\",\"name\":\"{}\",\"count\":{},\"mean\":{},\"last\":{}}}",
                    json_escape(&name),
                    m.count(),
                    m.mean().map_or("null".to_string(), json_f64),
                    m.last().map_or("null".to_string(), json_f64)
                );
            }
        }
        for e in self.events() {
            let _ = writeln!(
                out,
                "{{\"type\":\"event\",\"name\":\"{}\",\"ts_us\":{},\"tid\":{},\"detail\":\"{}\"}}",
                json_escape(&e.name),
                json_f64(e.ts_us),
                e.tid,
                json_escape(&e.detail)
            );
        }
        out
    }

    /// Renders the registry as Chrome `trace_event` JSON: complete
    /// (`"ph":"X"`) events for spans (open spans are closed at the
    /// export timestamp), instant (`"ph":"i"`) events for ring events,
    /// and counter (`"ph":"C"`) samples with the final counter and
    /// gauge values. Load the output in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        let now = self.now_us();
        let mut events: Vec<String> = Vec::new();
        let mut max_ts = 0.0f64;
        for s in self.spans() {
            let end = s.end_us.unwrap_or(now);
            max_ts = max_ts.max(end);
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{}}}",
                json_escape(&s.name),
                s.tid,
                json_f64(s.start_us),
                json_f64(end - s.start_us),
                json_args(&s.args),
            ));
        }
        for e in self.events() {
            max_ts = max_ts.max(e.ts_us);
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"detail\":\"{}\"}}}}",
                json_escape(&e.name),
                e.tid,
                json_f64(e.ts_us),
                json_escape(&e.detail),
            ));
        }
        for name in self.counter_names() {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"args\":{{\"value\":{}}}}}",
                json_escape(&name),
                json_f64(max_ts),
                self.counter(&name),
            ));
        }
        for name in self.gauge_names() {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"gauge\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"args\":{{\"value\":{}}}}}",
                json_escape(&name),
                json_f64(max_ts),
                json_f64(self.gauge(&name).unwrap_or(0.0)),
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
            events.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_tree_shows_nesting_and_metrics() {
        let r = Registry::new();
        {
            let outer = r.span("compile");
            outer.record_cycles(42);
            let _inner = r.span("schedule");
        }
        r.counter_add("kernels", 1);
        r.gauge_set("util", 0.5);
        r.histogram_record("lat", 10.0);
        r.observe("mon", 2.0);
        r.event("boot", "vm0");
        let text = r.to_text();
        assert!(text.contains("  compile"));
        assert!(text.contains("    schedule"), "nesting indents: {text}");
        assert!(text.contains("cycles=42"));
        assert!(text.contains("kernels = 1"));
        assert!(text.contains("util = 0.5"));
        assert!(text.contains("lat: n=1"));
        assert!(text.contains("mon: n=1"));
        assert!(text.contains("boot"));
    }

    #[test]
    fn json_lines_one_object_per_line() {
        let r = Registry::new();
        {
            let _s = r.span("a \"quoted\" name");
        }
        r.counter_add("c", 7);
        r.event("e", "line\nbreak");
        let rendered = r.to_json_lines();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\\\"quoted\\\""));
        assert!(lines[1].contains("\"value\":7"));
        assert!(lines[2].contains("\\n"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_has_expected_phases() {
        let r = Registry::new();
        {
            let _s = r.span("stage");
        }
        r.event("tick", "");
        r.counter_add("bytes", 1024);
        r.gauge_set("depth", 3.0);
        let trace = r.to_chrome_trace();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("\"name\":\"stage\""));
    }

    #[test]
    fn open_spans_are_closed_at_export() {
        let r = Registry::new();
        let _open = r.span("still-running");
        let trace = r.to_chrome_trace();
        assert!(trace.contains("still-running"));
        // "dur" must be present and non-negative even for open spans.
        assert!(trace.contains("\"dur\":"));
    }

    #[test]
    fn non_finite_numbers_never_reach_json() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.25), "1.25");
        assert_eq!(json_f64(3.0), "3");
        assert_eq!(json_f64(-0.5), "-0.5");
    }
}
