//! # everest-telemetry
//!
//! The observability backbone of the EVEREST SDK reproduction: one
//! thread-safe, zero-dependency [`Registry`] of **spans**, **metrics**
//! and **events** shared by every layer of the stack, so a single
//! compile → deploy → execute flow can be inspected end to end.
//!
//! The paper's runtime layer (§VI: HEFT scheduling, SR-IOV
//! virtualization, mARGOt autotuning) makes all of its decisions from
//! *monitored* quantities; this crate gives those quantities one
//! interoperable surface instead of per-component private counters.
//!
//! ## Model
//!
//! * **Spans** ([`Registry::span`]) — a monotonic tree of timed
//!   regions. Each span records wall-clock start/end (µs since the
//!   registry's epoch), the recording thread, its parent (the
//!   innermost span open on the same thread *and the same registry*),
//!   and typed key/value arguments — including simulated durations
//!   such as HLS cycle counts ([`SpanGuard::record_cycles`]).
//! * **Metrics** — monotonic `u64` counters
//!   ([`Registry::counter_add`]), last-value `f64` gauges
//!   ([`Registry::gauge_set`]), log-bucketed histograms
//!   ([`Registry::histogram_record`]), and sliding-window [`Monitor`]s
//!   ([`Registry::observe`]) — the mARGOt-style windowed statistics
//!   the autotuner corrects its expectations with.
//! * **Events** ([`Registry::event`]) — a bounded ring buffer of
//!   timestamped point occurrences (VM boots, VF hot-plugs, operating
//!   point switches).
//!
//! ## Sinks
//!
//! Three export formats, all derivable from any registry at any time:
//!
//! * [`Registry::to_text`] — human-readable span tree plus metric
//!   tables;
//! * [`Registry::to_json_lines`] — one JSON object per record, for
//!   machine consumption;
//! * [`Registry::to_chrome_trace`] — Chrome `trace_event` JSON, loadable
//!   in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) for
//!   flamegraph viewing (surfaced as `basecamp ... --trace out.json`).
//!
//! The stable span/metric/event name catalogue — the contract every
//! sink consumer can rely on — is documented in `docs/OBSERVABILITY.md`
//! at the repository root and enforced by an integration test.
//!
//! ## Global registry
//!
//! Instrumented components default to the process-wide registry
//! ([`Registry::global`]); free functions ([`span`], [`counter_add`],
//! [`event`], ...) are shorthands for it. Components that accept an
//! injected `Arc<Registry>` (e.g. `Basecamp::with_telemetry`) record
//! their own spans there instead, which keeps unit tests isolated.
//!
//! # Examples
//!
//! ```
//! use everest_telemetry::Registry;
//!
//! let registry = Registry::new();
//! {
//!     let compile = registry.span("demo.compile");
//!     compile.record_cycles(1_024);
//!     let _inner = registry.span("demo.schedule");
//!     registry.counter_add("demo.kernels", 1);
//! } // guards drop: spans end
//! let spans = registry.spans();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[1].parent, Some(spans[0].id));
//! assert!(registry.to_chrome_trace().contains("\"traceEvents\""));
//! ```

pub mod monitor;
pub mod registry;
pub mod sinks;

pub use monitor::Monitor;
pub use registry::{
    ArgValue, CounterHandle, EventRecord, GaugeHandle, HistogramHandle, HistogramSnapshot,
    MonitorHandle, Registry, SpanGuard, SpanRecord, DEFAULT_MONITOR_WINDOW,
};

use std::sync::Arc;

/// Opens a span on the [global registry](Registry::global).
///
/// The span ends when the returned guard drops.
pub fn span(name: impl Into<String>) -> SpanGuard {
    Registry::global().span(name)
}

/// Increments a monotonic counter on the global registry.
pub fn counter_add(name: &str, delta: u64) {
    Registry::global().counter_add(name, delta);
}

/// Sets a gauge on the global registry.
pub fn gauge_set(name: &str, value: f64) {
    Registry::global().gauge_set(name, value);
}

/// Records a histogram observation on the global registry.
pub fn histogram_record(name: &str, value: f64) {
    Registry::global().histogram_record(name, value);
}

/// Feeds a sliding-window monitor on the global registry.
pub fn observe(name: &str, value: f64) {
    Registry::global().observe(name, value);
}

/// Appends an event to the global registry's ring buffer.
pub fn event(name: &str, detail: impl Into<String>) {
    Registry::global().event(name, detail);
}

/// A clone of the global registry handle, for components that hold an
/// `Arc<Registry>` field defaulting to the process-wide instance.
pub fn global() -> Arc<Registry> {
    Registry::global()
}
