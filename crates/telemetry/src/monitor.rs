//! Sliding-window monitors: windowed statistics over metric
//! observations.
//!
//! mARGOt monitors observe "functional and extra-functional properties"
//! during execution (paper §VI-C); the autotuner uses them to correct
//! its design-time expectations online. They live here — in the shared
//! telemetry registry — so every component reads the same windows
//! instead of keeping private copies.

use std::collections::VecDeque;

/// A sliding-window monitor over one metric.
#[derive(Debug, Clone)]
pub struct Monitor {
    window: usize,
    values: VecDeque<f64>,
}

impl Monitor {
    /// Creates a monitor keeping the last `window` observations.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Monitor {
        assert!(window > 0, "monitor window must be positive");
        Monitor {
            window,
            values: VecDeque::new(),
        }
    }

    /// Records an observation.
    pub fn observe(&mut self, value: f64) {
        if self.values.len() == self.window {
            self.values.pop_front();
        }
        self.values.push_back(value);
    }

    /// Number of observations currently in the window.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Windowed mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Windowed standard deviation (`None` with fewer than 2 samples).
    pub fn stddev(&self) -> Option<f64> {
        if self.values.len() < 2 {
            return None;
        }
        let mean = self.mean().expect("non-empty");
        let var = self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        Some(var.sqrt())
    }

    /// Most recent observation.
    pub fn last(&self) -> Option<f64> {
        self.values.back().copied()
    }

    /// Clears the window (e.g. after an environment change).
    pub fn reset(&mut self) {
        self.values.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_over_window() {
        let mut m = Monitor::new(3);
        assert_eq!(m.mean(), None);
        m.observe(1.0);
        m.observe(2.0);
        m.observe(3.0);
        assert_eq!(m.mean(), Some(2.0));
        assert!((m.stddev().unwrap() - 1.0).abs() < 1e-12);
        // window slides: 1.0 evicted
        m.observe(5.0);
        assert_eq!(m.count(), 3);
        assert!((m.mean().unwrap() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.last(), Some(5.0));
    }

    #[test]
    fn reset_clears() {
        let mut m = Monitor::new(4);
        m.observe(1.0);
        m.reset();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = Monitor::new(0);
    }
}
