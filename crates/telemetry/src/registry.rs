//! The thread-safe span/metric/event registry.
//!
//! One [`Registry`] holds everything a flow records: an append-only
//! span tree, typed metrics (counters, gauges, histograms,
//! sliding-window monitors) and a bounded event ring. All mutation goes
//! through one internal mutex, so records from concurrent threads
//! interleave without tearing; span parenthood is tracked per thread
//! (a span's parent is the innermost span still open on the *same*
//! thread and the *same* registry).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

use crate::monitor::Monitor;

/// Default sliding window for [`Registry::observe`].
pub const DEFAULT_MONITOR_WINDOW: usize = 64;

/// Default capacity of the event ring buffer.
const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Histogram bucket base: bucket `i` covers values `<= BASE^i`.
const BUCKET_BASE: f64 = 4.0;

/// Number of finite histogram buckets (the last bucket is +inf).
const BUCKETS: usize = 22;

/// A typed span argument / annotation value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counts, cycles, bytes).
    U64(u64),
    /// Floating point (times, rates).
    F64(f64),
    /// Free-form text (names, configurations).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(v) => write!(f, "{v}"),
            ArgValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Bool(v)
    }
}

/// One recorded span: a timed region of the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Registry-unique span id (creation order).
    pub id: u32,
    /// Parent span id: the innermost span that was open on the same
    /// thread when this one started.
    pub parent: Option<u32>,
    /// Stable span name (see `docs/OBSERVABILITY.md`).
    pub name: String,
    /// Small integer id of the recording thread.
    pub tid: u64,
    /// Start, µs since the registry epoch.
    pub start_us: f64,
    /// End, µs since the registry epoch (`None` while still open).
    pub end_us: Option<f64>,
    /// Typed annotations (cycle counts, configuration, sizes).
    pub args: BTreeMap<String, ArgValue>,
}

impl SpanRecord {
    /// Wall-clock duration in µs (`None` while the span is open).
    pub fn duration_us(&self) -> Option<f64> {
        self.end_us.map(|e| e - self.start_us)
    }
}

/// One recorded point event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Stable event name.
    pub name: String,
    /// Timestamp, µs since the registry epoch.
    pub ts_us: f64,
    /// Small integer id of the recording thread.
    pub tid: u64,
    /// Free-form detail text.
    pub detail: String,
}

/// Internal histogram state with logarithmic buckets.
#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// `buckets[i]` counts values `<= BUCKET_BASE^i`; one extra
    /// overflow bucket at the end.
    buckets: Vec<u64>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; BUCKETS + 1],
        }
    }

    fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let mut bound = 1.0;
        for bucket in self.buckets.iter_mut().take(BUCKETS) {
            if value <= bound {
                *bucket += 1;
                return;
            }
            bound *= BUCKET_BASE;
        }
        *self.buckets.last_mut().expect("overflow bucket") += 1;
    }
}

/// A read-only snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// `(upper_bound, count)` pairs; the last bound is `f64::INFINITY`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Estimated quantile `q` in `[0, 1]` (`None` when empty).
    ///
    /// Walks the log-spaced buckets to the one holding the
    /// nearest-rank sample, then interpolates linearly inside it. The
    /// bucket edges are clamped by the exact recorded `min`/`max` (the
    /// overflow bucket in particular has no finite upper bound of its
    /// own), so the estimate always lands in `[min, max]` and is exact
    /// at `q = 0` and `q = 1`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut lower = 0.0_f64;
        for &(bound, count) in &self.buckets {
            if seen + count >= rank {
                let lo = lower.max(self.min);
                let hi = bound.min(self.max);
                if count == 0 || hi <= lo {
                    return Some(hi.clamp(self.min, self.max));
                }
                let fraction = (rank - seen) as f64 / count as f64;
                return Some((lo + fraction * (hi - lo)).clamp(self.min, self.max));
            }
            seen += count;
            lower = bound;
        }
        Some(self.max)
    }

    /// Estimated median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// Pre-sized capacity for the span buffer: a serving run opens a few
/// spans but an instrumented compile flow opens hundreds; one page of
/// records avoids the early re-allocation cascade either way.
const SPAN_PREALLOC: usize = 128;

/// A pre-resolved handle to one monotonic counter.
///
/// The registry's string-keyed [`Registry::counter_add`] takes the
/// registry mutex and walks a name map on every call; a handle resolves
/// the name once and turns each increment into a single relaxed atomic
/// add — the hot-path form used by the serving engine's event loop.
///
/// ```
/// let registry = everest_telemetry::Registry::new();
/// let completed = registry.counter_handle("serve.requests_completed");
/// completed.add(1);
/// assert_eq!(registry.counter("serve.requests_completed"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Adds `delta` to the counter (relaxed; no lock taken).
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current counter value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A pre-resolved handle to one gauge (an `f64` stored as atomic bits).
///
/// ```
/// let registry = everest_telemetry::Registry::new();
/// let depth = registry.gauge_handle("serve.queue_depth");
/// depth.set(3.0);
/// assert_eq!(registry.gauge("serve.queue_depth"), Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    /// Sets the gauge (relaxed atomic store of the float's bits).
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Last value set through any handle or the string API.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A pre-resolved — and optionally *sampled* — handle to one histogram.
///
/// With `every = 1` each [`HistogramHandle::record`] locks only the one
/// histogram cell (never the registry map). With `every = N > 1` the
/// handle records every Nth observation deterministically (the 1st,
/// N+1st, 2N+1st, …), so two same-seed runs sample identical
/// subsequences; quantiles become estimates over the 1-in-N sample and
/// `count` reflects samples, not observations — the contract documented
/// per metric in `docs/OBSERVABILITY.md`.
///
/// ```
/// let registry = everest_telemetry::Registry::new();
/// let mut wait = registry.histogram_handle_sampled("serve.queue_wait_us", 4);
/// for v in 0..8 {
///     wait.record(v as f64);
/// }
/// // Observations 0 and 4 were sampled (1-in-4, deterministic).
/// assert_eq!(registry.histogram("serve.queue_wait_us").unwrap().count, 2);
/// ```
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    cell: Arc<Mutex<Histogram>>,
    every: u64,
    seen: u64,
}

impl HistogramHandle {
    /// Records `value`, honouring the handle's sampling period.
    pub fn record(&mut self, value: f64) {
        let sample = self.seen.is_multiple_of(self.every);
        self.seen += 1;
        if sample {
            self.cell
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(value);
        }
    }

    /// The sampling period `N` (1 records everything).
    pub fn every(&self) -> u64 {
        self.every
    }
}

/// A pre-resolved handle to one sliding-window monitor.
///
/// ```
/// let registry = everest_telemetry::Registry::new();
/// let inflation = registry.monitor_handle("health.node0.inflation", 32);
/// inflation.observe(1.25);
/// assert_eq!(registry.monitor("health.node0.inflation").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MonitorHandle(Arc<Mutex<Monitor>>);

impl MonitorHandle {
    /// Feeds one observation into the monitor window.
    pub fn observe(&self, value: f64) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(value);
    }
}

/// Everything the registry records, behind one mutex.
///
/// Metric values live in shared cells (`Arc<AtomicU64>` /
/// `Arc<Mutex<_>>`) rather than directly in the maps, so a pre-resolved
/// handle can mutate its cell without touching the registry mutex.
#[derive(Debug)]
pub(crate) struct Inner {
    pub(crate) spans: Vec<SpanRecord>,
    counters: BTreeMap<String, Arc<AtomicU64>>,
    /// Gauge cells hold `f64::to_bits`.
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Mutex<Histogram>>>,
    monitors: BTreeMap<String, Arc<Mutex<Monitor>>>,
    pub(crate) events: VecDeque<EventRecord>,
    threads: HashMap<ThreadId, u64>,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            spans: Vec::with_capacity(SPAN_PREALLOC),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            monitors: BTreeMap::new(),
            events: VecDeque::new(),
            threads: HashMap::new(),
        }
    }

    fn tid(&mut self) -> u64 {
        let next = self.threads.len() as u64;
        *self
            .threads
            .entry(std::thread::current().id())
            .or_insert(next)
    }
}

/// The span/metric/event registry. See the [crate docs](crate) for the
/// model; construction always yields an [`Arc`] so span guards and
/// instrumented components can share ownership.
#[derive(Debug)]
pub struct Registry {
    /// Process-unique registry id, used to key the per-thread span
    /// stack so spans on different registries never parent each other.
    uid: u64,
    epoch: Instant,
    event_capacity: usize,
    pub(crate) inner: Mutex<Inner>,
}

thread_local! {
    /// Stack of `(registry uid, span id)` currently open on this thread.
    static SPAN_STACK: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
}

fn next_uid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Registry {
    /// Creates an empty registry with the default event capacity.
    pub fn new() -> Arc<Registry> {
        Registry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates an empty registry whose event ring holds at most
    /// `capacity` events (older events are evicted first).
    pub fn with_event_capacity(capacity: usize) -> Arc<Registry> {
        Arc::new(Registry {
            uid: next_uid(),
            epoch: Instant::now(),
            event_capacity: capacity.max(1),
            inner: Mutex::new(Inner::new()),
        })
    }

    /// The process-wide registry that instrumented components default
    /// to. Cheap to call: clones an `Arc`.
    pub fn global() -> Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(Registry::new))
    }

    /// Microseconds elapsed since this registry was created.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Lock poisoning only occurs when a panic unwinds while the
        // mutex is held; telemetry should survive that and keep the
        // data recorded so far.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ----------------------------------------------------------------
    // Spans.

    /// Opens a span; it ends when the returned guard drops. The parent
    /// is the innermost span currently open on this thread (for this
    /// registry).
    pub fn span(self: &Arc<Self>, name: impl Into<String>) -> SpanGuard {
        let now = self.now_us();
        let mut inner = self.lock();
        let tid = inner.tid();
        let parent = SPAN_STACK.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(uid, _)| *uid == self.uid)
                .map(|&(_, id)| id)
        });
        let id = inner.spans.len() as u32;
        inner.spans.push(SpanRecord {
            id,
            parent,
            name: name.into(),
            tid,
            start_us: now,
            end_us: None,
            args: BTreeMap::new(),
        });
        drop(inner);
        SPAN_STACK.with(|stack| stack.borrow_mut().push((self.uid, id)));
        SpanGuard {
            registry: Arc::clone(self),
            id,
        }
    }

    fn end_span(&self, id: u32) {
        let now = self.now_us();
        let mut inner = self.lock();
        if let Some(span) = inner.spans.get_mut(id as usize) {
            span.end_us = Some(now);
        }
        drop(inner);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&e| e == (self.uid, id)) {
                stack.remove(pos);
            }
        });
    }

    fn span_arg(&self, id: u32, key: &str, value: ArgValue) {
        let mut inner = self.lock();
        if let Some(span) = inner.spans.get_mut(id as usize) {
            span.args.insert(key.to_string(), value);
        }
    }

    /// Snapshot of every span recorded so far, in creation order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    // ----------------------------------------------------------------
    // Metrics.

    /// Resolves (creating at 0 if absent) the counter cell for `name`.
    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.lock();
        if let Some(cell) = inner.counters.get(name) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(AtomicU64::new(0));
        inner.counters.insert(name.to_string(), Arc::clone(&cell));
        cell
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.lock();
        if let Some(cell) = inner.gauges.get(name) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(AtomicU64::new(0.0_f64.to_bits()));
        inner.gauges.insert(name.to_string(), Arc::clone(&cell));
        cell
    }

    fn histogram_cell(&self, name: &str) -> Arc<Mutex<Histogram>> {
        let mut inner = self.lock();
        if let Some(cell) = inner.histograms.get(name) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(Mutex::new(Histogram::new()));
        inner.histograms.insert(name.to_string(), Arc::clone(&cell));
        cell
    }

    fn monitor_cell(&self, name: &str, window: usize) -> Arc<Mutex<Monitor>> {
        let mut inner = self.lock();
        if let Some(cell) = inner.monitors.get(name) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(Mutex::new(Monitor::new(window.max(1))));
        inner.monitors.insert(name.to_string(), Arc::clone(&cell));
        cell
    }

    /// Pre-resolves a [`CounterHandle`] for `name` (created at 0). The
    /// handle and the string API mutate the same cell.
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        CounterHandle(self.counter_cell(name))
    }

    /// Pre-resolves a [`GaugeHandle`] for `name` (created at 0).
    pub fn gauge_handle(&self, name: &str) -> GaugeHandle {
        GaugeHandle(self.gauge_cell(name))
    }

    /// Pre-resolves an unsampled [`HistogramHandle`] for `name`.
    pub fn histogram_handle(&self, name: &str) -> HistogramHandle {
        self.histogram_handle_sampled(name, 1)
    }

    /// Pre-resolves a [`HistogramHandle`] recording every `every`-th
    /// observation (deterministic 1-in-N sampling; see the handle docs
    /// for the exact semantics).
    pub fn histogram_handle_sampled(&self, name: &str, every: u64) -> HistogramHandle {
        HistogramHandle {
            cell: self.histogram_cell(name),
            every: every.max(1),
            seen: 0,
        }
    }

    /// Pre-resolves a [`MonitorHandle`] for `name`, creating the
    /// monitor with `window` if absent (an existing monitor keeps its
    /// original window).
    pub fn monitor_handle(&self, name: &str, window: usize) -> MonitorHandle {
        MonitorHandle(self.monitor_cell(name, window))
    }

    /// Adds `delta` to the monotonic counter `name` (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock()
            .counters
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.gauge_cell(name)
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Last value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock()
            .gauges
            .get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Records `value` into the histogram `name`.
    pub fn histogram_record(&self, name: &str, value: f64) {
        self.histogram_cell(name)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(value);
    }

    /// Snapshot of histogram `name`, if it has ever been recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let cell = {
            let inner = self.lock();
            inner.histograms.get(name).map(Arc::clone)
        }?;
        let h = cell.lock().unwrap_or_else(|e| e.into_inner());
        let mut bound = 1.0;
        let mut buckets = Vec::with_capacity(h.buckets.len());
        for (i, &count) in h.buckets.iter().enumerate() {
            if i == h.buckets.len() - 1 {
                buckets.push((f64::INFINITY, count));
            } else {
                buckets.push((bound, count));
                bound *= BUCKET_BASE;
            }
        }
        Some(HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets,
        })
    }

    /// Feeds the sliding-window monitor `name` (window
    /// [`DEFAULT_MONITOR_WINDOW`] on first use).
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_windowed(name, value, DEFAULT_MONITOR_WINDOW);
    }

    /// Feeds the monitor `name`, creating it with `window` if absent
    /// (an existing monitor keeps its original window).
    pub fn observe_windowed(&self, name: &str, value: f64, window: usize) {
        self.monitor_cell(name, window)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(value);
    }

    /// Snapshot of the monitor `name`, if observations exist.
    pub fn monitor(&self, name: &str) -> Option<Monitor> {
        let cell = {
            let inner = self.lock();
            inner.monitors.get(name).map(Arc::clone)
        }?;
        let snapshot = cell.lock().unwrap_or_else(|e| e.into_inner()).clone();
        Some(snapshot)
    }

    /// Clears the monitor `name` (e.g. after an environment change).
    pub fn reset_monitor(&self, name: &str) {
        let cell = {
            let inner = self.lock();
            inner.monitors.get(name).map(Arc::clone)
        };
        if let Some(cell) = cell {
            cell.lock().unwrap_or_else(|e| e.into_inner()).reset();
        }
    }

    /// Snapshot of every counter as `(name, value)`, name order.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshot of every gauge as `(name, value)`, name order.
    pub fn gauges_snapshot(&self) -> Vec<(String, f64)> {
        self.lock()
            .gauges
            .iter()
            .map(|(name, cell)| (name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))))
            .collect()
    }

    /// Names of all counters recorded so far.
    pub fn counter_names(&self) -> Vec<String> {
        self.lock().counters.keys().cloned().collect()
    }

    /// Names of all gauges recorded so far.
    pub fn gauge_names(&self) -> Vec<String> {
        self.lock().gauges.keys().cloned().collect()
    }

    /// Names of all histograms recorded so far.
    pub fn histogram_names(&self) -> Vec<String> {
        self.lock().histograms.keys().cloned().collect()
    }

    /// Names of all monitors recorded so far.
    pub fn monitor_names(&self) -> Vec<String> {
        self.lock().monitors.keys().cloned().collect()
    }

    // ----------------------------------------------------------------
    // Events.

    /// Appends a point event; when the ring is full the oldest event
    /// is evicted.
    pub fn event(&self, name: &str, detail: impl Into<String>) {
        let now = self.now_us();
        let mut inner = self.lock();
        let tid = inner.tid();
        if inner.events.len() == self.event_capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(EventRecord {
            name: name.to_string(),
            ts_us: now,
            tid,
            detail: detail.into(),
        });
    }

    /// Snapshot of the event ring, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.lock().events.iter().cloned().collect()
    }

    /// Drops every recorded span, metric and event (thread ids are
    /// kept). Meant for standalone registries; resetting the global
    /// registry discards other components' data too. Handles resolved
    /// before the reset keep their detached cells: they stay safe to
    /// use but no longer feed this registry's exports.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.spans.clear();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
        inner.monitors.clear();
        inner.events.clear();
    }
}

/// Ends its span on drop; annotate through it while the span is open.
#[derive(Debug)]
pub struct SpanGuard {
    registry: Arc<Registry>,
    id: u32,
}

impl SpanGuard {
    /// The span's registry-unique id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Attaches a typed argument to the span.
    pub fn arg(&self, key: &str, value: impl Into<ArgValue>) -> &Self {
        self.registry.span_arg(self.id, key, value.into());
        self
    }

    /// Records a simulated-cycle duration for the span (the `cycles`
    /// argument — e.g. an HLS latency that has no wall-clock footprint).
    pub fn record_cycles(&self, cycles: u64) -> &Self {
        self.arg("cycles", cycles)
    }

    /// Records a simulated wall-time duration in µs (the `sim_us`
    /// argument — e.g. a scheduler makespan in virtual time).
    pub fn record_sim_us(&self, us: f64) -> &Self {
        self.arg("sim_us", us)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.registry.end_span(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let r = Registry::new();
        {
            let outer = r.span("outer");
            outer.arg("k", 3u64);
            {
                let _inner = r.span("inner");
            }
            let _sibling = r.span("sibling");
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        assert!(spans.iter().all(|s| s.end_us.is_some()));
        assert_eq!(spans[0].args["k"], ArgValue::U64(3));
    }

    #[test]
    fn two_registries_do_not_cross_parent() {
        let a = Registry::new();
        let b = Registry::new();
        let _outer_a = a.span("a.outer");
        let _outer_b = b.span("b.outer");
        let inner_a = a.span("a.inner");
        // a.inner's parent is a.outer, not b.outer, despite b.outer
        // being the innermost open span on this thread.
        drop(inner_a);
        let spans = a.spans();
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(b.spans()[0].parent, None);
    }

    #[test]
    fn counters_gauges_histograms_monitors() {
        let r = Registry::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        assert_eq!(r.counter("c"), 5);
        assert_eq!(r.counter("missing"), 0);

        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));

        for v in [0.5, 3.0, 100.0, 1e9] {
            r.histogram_record("h", v);
        }
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1e9);
        assert!((h.mean().unwrap() - (103.5 + 1e9) / 4.0).abs() < 1.0);
        assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4);
        // first bucket (<= 1) holds exactly the 0.5 observation
        assert_eq!(h.buckets[0].1, 1);

        r.observe_windowed("m", 1.0, 2);
        r.observe_windowed("m", 2.0, 2);
        r.observe_windowed("m", 3.0, 2);
        let m = r.monitor("m").unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), Some(2.5));
        r.reset_monitor("m");
        assert_eq!(r.monitor("m").unwrap().count(), 0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_distribution() {
        let r = Registry::new();
        for v in 1..=1000 {
            r.histogram_record("h", v as f64);
        }
        let h = r.histogram("h").unwrap();
        let p50 = h.p50().unwrap();
        let p95 = h.p95().unwrap();
        let p99 = h.p99().unwrap();
        // Log buckets (base 4) bound the estimate loosely but the
        // ordering and range guarantees are exact.
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((h.min..=h.max).contains(&p50));
        assert!((h.min..=h.max).contains(&p99));
        assert!((250.0..=1000.0).contains(&p50), "p50 estimate {p50}");
        assert_eq!(h.quantile(0.0).unwrap(), h.min);
        assert_eq!(h.quantile(1.0).unwrap(), h.max);

        // Single observation: every quantile is that value.
        let r = Registry::new();
        r.histogram_record("one", 7.5);
        let one = r.histogram("one").unwrap();
        assert_eq!(one.p50(), Some(7.5));
        assert_eq!(one.p99(), Some(7.5));
        // Empty histogram never exists, but an explicit empty snapshot
        // answers None.
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let r = Registry::new();
        r.histogram_record("h", f64::NAN);
        r.histogram_record("h", f64::INFINITY);
        r.histogram_record("h", 1.0);
        assert_eq!(r.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn event_ring_evicts_oldest() {
        let r = Registry::with_event_capacity(3);
        for i in 0..5 {
            r.event("e", format!("n{i}"));
        }
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "n2");
        assert_eq!(events[2].detail, "n4");
    }

    #[test]
    fn reset_clears_all() {
        let r = Registry::new();
        {
            let _s = r.span("s");
        }
        r.counter_add("c", 1);
        r.event("e", "");
        r.reset();
        assert!(r.spans().is_empty());
        assert_eq!(r.counter("c"), 0);
        assert!(r.events().is_empty());
    }

    #[test]
    fn timestamps_are_monotonic() {
        let r = Registry::new();
        let g = r.span("a");
        let t0 = r.spans()[0].start_us;
        drop(g);
        let s = &r.spans()[0];
        assert!(s.end_us.unwrap() >= t0);
        assert!(s.duration_us().unwrap() >= 0.0);
    }
}
