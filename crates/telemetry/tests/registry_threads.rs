//! Concurrency coverage for the shared registry: spans, counters and
//! events recorded from many threads at once must never be lost, torn,
//! or cross-parented between threads.

use std::sync::Arc;

use everest_telemetry::Registry;

const THREADS: usize = 8;
const SPANS_PER_THREAD: usize = 64;

#[test]
fn concurrent_span_creation_is_race_free() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry: &Arc<Registry> = &registry;
            scope.spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    let outer = registry.span(format!("worker{t}.outer"));
                    outer.arg("iteration", i);
                    let _inner = registry.span(format!("worker{t}.inner"));
                    registry.counter_add("work.items", 1);
                }
            });
        }
    });

    let spans = registry.spans();
    assert_eq!(spans.len(), THREADS * SPANS_PER_THREAD * 2);
    assert_eq!(
        registry.counter("work.items"),
        (THREADS * SPANS_PER_THREAD) as u64
    );
    // Every span closed, ids unique and dense.
    let mut seen = vec![false; spans.len()];
    for s in &spans {
        assert!(s.end_us.is_some(), "span {} left open", s.name);
        assert!(!seen[s.id as usize], "duplicate span id {}", s.id);
        seen[s.id as usize] = true;
    }
    // Parenthood never crosses threads: each inner span's parent is an
    // outer span recorded by the same worker on the same thread.
    for s in spans.iter().filter(|s| s.name.ends_with(".inner")) {
        let parent = &spans[s.parent.expect("inner spans have parents") as usize];
        assert_eq!(parent.tid, s.tid, "parent on a different thread");
        assert_eq!(
            parent.name.trim_end_matches("outer"),
            s.name.trim_end_matches("inner"),
            "parent from a different worker"
        );
    }
}

#[test]
fn concurrent_metrics_accumulate_exactly() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry: &Arc<Registry> = &registry;
            scope.spawn(move || {
                for i in 0..1000u64 {
                    registry.counter_add("hits", 1);
                    registry.histogram_record("latency", i as f64);
                    registry.observe("window", i as f64);
                }
            });
        }
    });
    assert_eq!(registry.counter("hits"), (THREADS * 1000) as u64);
    let h = registry.histogram("latency").expect("recorded");
    assert_eq!(h.count, (THREADS * 1000) as u64);
    assert_eq!(h.min, 0.0);
    assert_eq!(h.max, 999.0);
    let m = registry.monitor("window").expect("recorded");
    assert_eq!(m.count(), m.window().min(THREADS * 1000));
}

#[test]
fn concurrent_export_does_not_tear() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        {
            let registry: &Arc<Registry> = &registry;
            scope.spawn(move || {
                for i in 0..200 {
                    let _s = registry.span("writer.span");
                    registry.event("writer.event", format!("{i}"));
                }
            });
        }
        {
            let registry: &Arc<Registry> = &registry;
            scope.spawn(move || {
                for _ in 0..50 {
                    // Exports taken mid-write must each be valid JSON
                    // documents line by line.
                    for line in registry.to_json_lines().lines() {
                        assert!(line.starts_with('{') && line.ends_with('}'), "torn: {line}");
                    }
                    let trace = registry.to_chrome_trace();
                    assert!(trace.starts_with('{') && trace.ends_with('}'));
                }
            });
        }
    });
}
