//! Property: for every recorded span tree, a child span's interval is
//! contained in its parent's — so a nested span's duration can never
//! exceed its parent's duration.

use std::sync::Arc;

use proptest::prelude::*;

use everest_telemetry::{Registry, SpanRecord};

/// Builds a random span tree on `registry` driven by `shape`: each
/// entry is a child count for the node visited in preorder, capped by
/// `depth` to keep trees small. Returns the number of spans created.
fn build_tree(registry: &Arc<Registry>, shape: &[u8], depth: usize) -> usize {
    fn node(registry: &Arc<Registry>, shape: &mut std::slice::Iter<'_, u8>, depth: usize) -> usize {
        let children = shape.next().copied().unwrap_or(0) % 3;
        let span = registry.span(format!("prop.depth{depth}"));
        span.arg("depth", depth);
        let mut created = 1;
        if depth < 4 {
            for _ in 0..children {
                created += node(registry, shape, depth + 1);
            }
        }
        created
    }
    let mut iter = shape.iter();
    let mut created = 0;
    while iter.len() > 0 {
        created += node(registry, &mut iter, depth);
    }
    created
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn nested_span_durations_never_exceed_parent(shape in proptest::collection::vec(any::<u8>(), 1..24)) {
        let registry = Registry::new();
        let created = build_tree(&registry, &shape, 0);
        let spans = registry.spans();
        prop_assert_eq!(spans.len(), created);
        for child in spans.iter().filter(|s| s.parent.is_some()) {
            let parent: &SpanRecord = &spans[child.parent.unwrap() as usize];
            let (cs, ce) = (child.start_us, child.end_us.unwrap());
            let (ps, pe) = (parent.start_us, parent.end_us.unwrap());
            prop_assert!(cs >= ps, "child starts before parent: {cs} < {ps}");
            prop_assert!(ce <= pe, "child ends after parent: {ce} > {pe}");
            prop_assert!(
                child.duration_us().unwrap() <= parent.duration_us().unwrap(),
                "child {} outlives parent {}",
                child.name, parent.name
            );
        }
    }

    #[test]
    fn span_ids_are_dense_and_parents_precede_children(shape in proptest::collection::vec(any::<u8>(), 1..24)) {
        let registry = Registry::new();
        build_tree(&registry, &shape, 0);
        for (i, span) in registry.spans().iter().enumerate() {
            prop_assert_eq!(span.id as usize, i);
            if let Some(parent) = span.parent {
                prop_assert!(parent < span.id, "parent id must precede child id");
            }
        }
    }
}
