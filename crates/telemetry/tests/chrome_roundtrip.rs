//! The Chrome `trace_event` sink emits real JSON: it must parse back
//! through `serde_json` into a typed document and survive a
//! serialize → parse → serialize round trip unchanged.

use serde::{Deserialize, Serialize};

use everest_telemetry::Registry;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(non_snake_case)]
struct ChromeTrace {
    displayTimeUnit: String,
    traceEvents: Vec<TraceEvent>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TraceEvent {
    name: String,
    cat: String,
    ph: String,
    pid: u64,
    tid: u64,
    ts: f64,
    /// Present only on `"ph":"X"` (complete) events.
    dur: Option<f64>,
    /// Present only on `"ph":"i"` (instant) events.
    s: Option<String>,
}

fn populated_registry() -> std::sync::Arc<Registry> {
    let r = Registry::new();
    {
        let compile = r.span("demo.compile");
        compile.record_cycles(4_096);
        compile.arg("target", "alveo \"u55c\"");
        let _hls = r.span("demo.hls");
        r.histogram_record("demo.latency_us", 17.25);
    }
    r.event("demo.hotplug", "vf=1 vm=0\nline two");
    r.counter_add("demo.bytes", 1 << 20);
    r.gauge_set("demo.depth", 2.5);
    r
}

#[test]
fn chrome_trace_round_trips_through_serde_json() {
    let registry = populated_registry();
    let emitted = registry.to_chrome_trace();

    let parsed: ChromeTrace = serde_json::from_str(&emitted).expect("sink emits valid JSON");
    assert_eq!(parsed.displayTimeUnit, "ms");
    // 2 spans (X) + 1 instant (i) + 1 counter (C) + 1 gauge (C).
    assert_eq!(parsed.traceEvents.len(), 5);

    let spans: Vec<&TraceEvent> = parsed.traceEvents.iter().filter(|e| e.ph == "X").collect();
    assert_eq!(spans.len(), 2);
    for span in &spans {
        assert!(span.dur.expect("complete events carry dur") >= 0.0);
        assert_eq!(span.cat, "span");
    }
    assert!(spans.iter().any(|s| s.name == "demo.compile"));

    let instants: Vec<&TraceEvent> = parsed.traceEvents.iter().filter(|e| e.ph == "i").collect();
    assert_eq!(instants.len(), 1);
    assert_eq!(instants[0].s.as_deref(), Some("t"));

    assert_eq!(parsed.traceEvents.iter().filter(|e| e.ph == "C").count(), 2);

    // Full round trip: reserialize the typed document and parse again.
    let reserialized = serde_json::to_string(&parsed).expect("serializes");
    let reparsed: ChromeTrace = serde_json::from_str(&reserialized).expect("round trips");
    assert_eq!(parsed, reparsed);
}

#[test]
fn span_names_in_trace_match_registry() {
    let registry = populated_registry();
    let parsed: ChromeTrace =
        serde_json::from_str(&registry.to_chrome_trace()).expect("valid JSON");
    let mut trace_names: Vec<String> = parsed
        .traceEvents
        .iter()
        .filter(|e| e.ph == "X")
        .map(|e| e.name.clone())
        .collect();
    trace_names.sort();
    let mut span_names: Vec<String> = registry.spans().into_iter().map(|s| s.name).collect();
    span_names.sort();
    assert_eq!(trace_names, span_names);
}

#[test]
fn json_lines_parse_line_by_line() {
    #[derive(Debug, Serialize, Deserialize)]
    struct AnyRecord {
        name: String,
    }
    let registry = populated_registry();
    let rendered = registry.to_json_lines();
    for line in rendered.lines() {
        let record: AnyRecord = serde_json::from_str(line).expect("each line is a JSON object");
        assert!(!record.name.is_empty());
    }
    for expected in ["span", "counter", "gauge", "histogram", "event"] {
        assert!(
            rendered.contains(&format!("\"type\":\"{expected}\"")),
            "missing record kind {expected}"
        );
    }
}
